#include "src/ftl/rtf_ftl.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

RtfFtl::RtfFtl(const FtlConfig& config)
    : FtlBase(config, nand::SequenceKind::kFps),
      order_(nand::fps_order(config.geometry.wordlines_per_block)),
      actives_(config.geometry.num_units(),
               std::vector<Cursor>(config.rtf_active_blocks)),
      backup_(config.geometry.num_units()),
      lsb_debt_(config.geometry.num_units(), 0) {}

std::uint32_t RtfFtl::lsb_ready_cursors(std::uint32_t chip) const {
  std::uint32_t ready = 0;
  for (const Cursor& c : actives_.at(chip)) {
    if (c.valid && next_type(c) == nand::PageType::kLsb) ++ready;
  }
  return ready;
}

std::optional<std::size_t> RtfFtl::find_cursor(std::uint32_t chip,
                                               nand::PageType type) const {
  const std::vector<Cursor>& cursors = actives_.at(chip);
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].valid && next_type(cursors[i]) == type) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> RtfFtl::replenish_slot(std::uint32_t chip, Microseconds now,
                                                  bool gc) {
  std::vector<Cursor>& cursors = actives_.at(chip);
  auto empty_slot = [&]() -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i].valid) return i;
    }
    return std::nullopt;
  };
  std::optional<std::size_t> slot = empty_slot();
  if (!slot) return std::nullopt;
  // Host-path allocation may trigger foreground GC whose copies recurse
  // into this FTL and fill slots; re-scan afterwards instead of clobbering.
  if (!gc && blocks_.free_blocks(chip) <= config_.gc_reserve_blocks) {
    if (!ensure_free_block(chip, now).is_ok()) return std::nullopt;
    slot = empty_slot();
    if (!slot) return std::nullopt;
  }
  Result<std::uint32_t> block = blocks_.allocate(
      chip, BlockUse::kActive, gc ? 0 : config_.gc_reserve_blocks);
  if (!block.is_ok()) return std::nullopt;
  cursors[*slot] = Cursor{.valid = true, .block = block.value(), .next = 0};
  return slot;
}

Microseconds RtfFtl::backup_paired_lsb(const nand::PageAddress& msb_addr,
                                       Microseconds now) {
  const nand::PageAddress paired{msb_addr.chip, msb_addr.block,
                                 {msb_addr.pos.wordline, nand::PageType::kLsb}};
  const nand::Block& block = device_.block({paired.chip, paired.block});
  if (block.page_state(paired.pos) != nand::PageState::kValid) return now;
  const Lpn lpn = block.read(paired.pos).value().lpn;
  // Only still-referenced data needs protecting.
  if (lpn == kInvalidLpn || !mapping_.maps_to(lpn, paired)) return now;

  // Attribution: the paired-LSB copy (and the cycled backup-block erase)
  // is backup overhead, not part of the host MSB write that required it.
  const nand::CauseScope cause(device_, nand::WriteCause::kBackup);

  // The copy is a real page read followed by a program to a backup block.
  Result<nand::NandDevice::ReadResult> got = device_.read(paired, now);
  assert(got.is_ok() && got.value().data.is_ok());

  // Backups go to an SLC-mode block: consecutive fast LSB-speed writes,
  // which MLC-mode FPS ordering would forbid.
  Cursor& cursor = backup_.at(msb_addr.chip);
  if (!cursor.valid) {
    // Keep one free block in reserve for GC relocation destinations.
    Result<std::uint32_t> block_id =
        blocks_.allocate(msb_addr.chip, BlockUse::kBackup, /*reserve=*/1);
    if (!block_id.is_ok()) {
      ++skipped_backups_;
      return got.value().timing.complete;
    }
    const Status slc = device_.block_mut({msb_addr.chip, block_id.value()}).set_slc_mode();
    assert(slc.is_ok());
    (void)slc;
    cursor = Cursor{.valid = true, .block = block_id.value(), .next = 0};
  }
  const nand::PageAddress dst{msb_addr.chip, cursor.block,
                              {cursor.next, nand::PageType::kLsb}};
  nand::PageData copy = std::move(got.value().data).take();
  copy.spare |= nand::kNonHostSpareFlag;  // backup copy, not the mapped page
  Result<nand::OpTiming> timing =
      device_.program(dst, std::move(copy), got.value().timing.complete);
  assert(timing.is_ok());
  ++cursor.next;
  blocks_.add_written({dst.chip, dst.block});
  ++stats_.backup_pages;
  if (cursor.next >= device_.geometry().wordlines_per_block) {
    // A full backup block's copies are stale (their MSB programs finished);
    // erase and recycle it.
    const Result<nand::OpTiming> erased =
        erase_block({dst.chip, cursor.block}, timing.value().complete);
    assert(erased.is_ok());
    (void)erased;
    blocks_.release({dst.chip, cursor.block});
    cursor.valid = false;
  }
  return timing.value().complete;
}

Result<Microseconds> RtfFtl::append_at(std::uint32_t chip, std::size_t slot, Lpn lpn,
                                       nand::PageData data, Microseconds now, bool gc) {
  Cursor& cursor = actives_.at(chip)[slot];
  const nand::PagePos pos = order_[cursor.next];
  const nand::PageAddress addr{chip, cursor.block, pos};

  Microseconds start = now;
  if (pos.type == nand::PageType::kMsb && !gc) {
    // Destructive MSB program: its paired LSB data must be backed up first.
    // GC relocation copies skip this: their sources survive until the pass
    // completes, so an interrupted pass is redone rather than recovered.
    start = backup_paired_lsb(addr, now);
  }
  Result<nand::OpTiming> timing = device_.program(addr, std::move(data), start);
  assert(timing.is_ok());
  ++cursor.next;
  if (cursor.next >= order_.size()) {
    blocks_.set_use({chip, cursor.block}, BlockUse::kFull);
    cursor.valid = false;
  }
  commit_mapping(lpn, addr);
  if (!gc) {
    if (pos.type == nand::PageType::kLsb) {
      ++stats_.host_lsb_writes;
      ++lsb_debt_[chip];
    } else {
      ++stats_.host_msb_writes;
      if (lsb_debt_[chip] > 0) --lsb_debt_[chip];
    }
  }
  return timing.value().complete;
}

Result<Microseconds> RtfFtl::allocate_host_page(std::uint32_t chip, Lpn lpn,
                                                nand::PageData data, Microseconds now,
                                                double buffer_utilization) {
  (void)buffer_utilization;
  // Return-to-fast: serve from an LSB frontier when one exists.
  std::optional<std::size_t> slot = find_cursor(chip, nand::PageType::kLsb);
  if (!slot) slot = replenish_slot(chip, now, /*gc=*/false);  // fresh block => LSB
  if (!slot) slot = find_cursor(chip, nand::PageType::kMsb);
  if (!slot) return ErrorCode::kNoFreeBlock;
  return append_at(chip, *slot, lpn, std::move(data), now, /*gc=*/false);
}

Result<Microseconds> RtfFtl::allocate_gc_page(std::uint32_t chip, Lpn lpn,
                                              nand::PageData data, Microseconds now,
                                              bool background) {
  // GC copies consume MSB pages first: that is what returns blocks toward
  // the fast state (and what the paper's rtfFTL does in idle times).
  (void)background;
  std::optional<std::size_t> slot = find_cursor(chip, nand::PageType::kMsb);
  if (!slot) slot = find_cursor(chip, nand::PageType::kLsb);
  if (!slot) slot = replenish_slot(chip, now, /*gc=*/true);
  if (!slot) return ErrorCode::kNoFreeBlock;
  return append_at(chip, *slot, lpn, std::move(data), now, /*gc=*/true);
}

void RtfFtl::on_idle_plan(Microseconds now, Microseconds deadline) {
  // Standard low-free-space background GC first.
  FtlBase::on_idle_plan(now, deadline);

  // Return-to-fast maintenance: consume MSB frontiers via GC relocation so
  // the next burst finds LSB-ready blocks. The work done is proportional
  // to the LSB skew the host has accumulated (one victim relocation fills
  // roughly a block's worth of MSB holes) — not an unconditional churn.
  const std::uint32_t chips = device_.geometry().num_units();
  const std::uint32_t wordlines = device_.geometry().wordlines_per_block;
  for (std::uint32_t chip = 0; chip < chips; ++chip) {
    // Fill empty slots so every slot contributes an LSB frontier.
    while (replenish_slot(chip, now, /*gc=*/false)) {
    }
    while (lsb_debt_[chip] >= wordlines &&
           device_.chip(chip).busy_until() < deadline) {
      const std::optional<std::uint32_t> victim = blocks_.pick_victim(chip);
      if (!victim) break;
      const Microseconds start = std::max(now, device_.chip(chip).busy_until());
      if (!collect_block(chip, *victim, start, deadline, /*background=*/true)) break;
      lsb_debt_[chip] -= std::min<std::uint64_t>(lsb_debt_[chip], wordlines);
    }
    // Finish off MSB-next cursors with single-page GC copies so the next
    // burst finds LSB frontiers (after an MSB program the FPS order always
    // returns to an LSB page).
    const std::size_t slots = actives_[chip].size();
    for (std::size_t i = 0;
         i < slots && find_cursor(chip, nand::PageType::kMsb).has_value() &&
         device_.chip(chip).busy_until() < deadline;
         ++i) {
      const std::optional<std::uint32_t> victim = blocks_.pick_victim(chip);
      if (!victim) break;
      const Microseconds start = std::max(now, device_.chip(chip).busy_until());
      collect_block(chip, *victim, start, deadline, /*background=*/true,
                    /*max_copies=*/1);
    }
    // A finished MSB may have been a block's last page; refill empty slots
    // so the pool is fast-ready when the burst arrives.
    while (replenish_slot(chip, now, /*gc=*/false)) {
    }
  }
}

void RtfFtl::save_extra(ser::Writer& w) const {
  w.u64(actives_.size());
  for (const std::vector<Cursor>& pool : actives_) {
    w.u64(pool.size());
    for (const Cursor& c : pool) {
      w.boolean(c.valid);
      w.u32(c.block);
      w.u32(c.next);
    }
  }
  w.u64(backup_.size());
  for (const Cursor& c : backup_) {
    w.boolean(c.valid);
    w.u32(c.block);
    w.u32(c.next);
  }
  w.u64(lsb_debt_.size());
  for (const std::uint64_t debt : lsb_debt_) w.u64(debt);
  w.u64(skipped_backups_);
}

void RtfFtl::load_extra(ser::Reader& r) {
  if (r.u64() != actives_.size()) {
    r.fail();
    return;
  }
  for (std::vector<Cursor>& pool : actives_) {
    if (r.u64() != pool.size()) {
      r.fail();
      return;
    }
    for (Cursor& c : pool) {
      c.valid = r.boolean();
      c.block = r.u32();
      c.next = r.u32();
    }
  }
  if (r.u64() != backup_.size()) {
    r.fail();
    return;
  }
  for (Cursor& c : backup_) {
    c.valid = r.boolean();
    c.block = r.u32();
    c.next = r.u32();
  }
  if (r.u64() != lsb_debt_.size()) {
    r.fail();
    return;
  }
  for (std::uint64_t& debt : lsb_debt_) debt = r.u64();
  skipped_backups_ = r.u64();
}

}  // namespace rps::ftl
