// Page-level logical-to-physical mapping table.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/nand/address.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::ftl {

/// Dense LPN -> physical page map. All four FTLs in the paper are
/// page-level mapping FTLs; they differ in allocation policy, not mapping.
class MappingTable {
 public:
  explicit MappingTable(Lpn exported_pages);

  [[nodiscard]] Lpn exported_pages() const { return static_cast<Lpn>(entries_.size()); }

  [[nodiscard]] bool is_mapped(Lpn lpn) const {
    return lpn < entries_.size() && entries_[lpn].mapped;
  }

  [[nodiscard]] Result<nand::PageAddress> lookup(Lpn lpn) const {
    if (lpn >= entries_.size()) return ErrorCode::kOutOfRange;
    if (!entries_[lpn].mapped) return ErrorCode::kNotFound;
    return entries_[lpn].addr;
  }

  /// Map `lpn` to `addr`, returning the previous address if one existed
  /// (the caller invalidates it in its block bookkeeping).
  std::optional<nand::PageAddress> update(Lpn lpn, const nand::PageAddress& addr) {
    assert(lpn < entries_.size());
    Entry& e = entries_[lpn];
    std::optional<nand::PageAddress> old;
    if (e.mapped) {
      old = e.addr;
    } else {
      ++mapped_count_;
    }
    e.addr = addr;
    e.mapped = true;
    return old;
  }

  /// Drop the mapping (TRIM). Returns the old address if mapped.
  std::optional<nand::PageAddress> unmap(Lpn lpn) {
    if (lpn >= entries_.size() || !entries_[lpn].mapped) return std::nullopt;
    entries_[lpn].mapped = false;
    --mapped_count_;
    return entries_[lpn].addr;
  }

  /// True iff `lpn` currently maps exactly to `addr` — the GC validity test.
  [[nodiscard]] bool maps_to(Lpn lpn, const nand::PageAddress& addr) const {
    return lpn < entries_.size() && entries_[lpn].mapped && entries_[lpn].addr == addr;
  }

  [[nodiscard]] Lpn mapped_count() const { return mapped_count_; }

  /// Snapshot support.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct Entry {
    nand::PageAddress addr;
    bool mapped = false;
  };
  std::vector<Entry> entries_;
  Lpn mapped_count_ = 0;
};

}  // namespace rps::ftl
