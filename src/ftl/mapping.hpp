// Page-level logical-to-physical mapping table.
#pragma once

#include <cstdint>
#include <vector>

#include "src/nand/address.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::ftl {

/// Dense LPN -> physical page map. All four FTLs in the paper are
/// page-level mapping FTLs; they differ in allocation policy, not mapping.
class MappingTable {
 public:
  explicit MappingTable(Lpn exported_pages);

  [[nodiscard]] Lpn exported_pages() const { return static_cast<Lpn>(entries_.size()); }

  [[nodiscard]] bool is_mapped(Lpn lpn) const;
  [[nodiscard]] Result<nand::PageAddress> lookup(Lpn lpn) const;

  /// Map `lpn` to `addr`, returning the previous address if one existed
  /// (the caller invalidates it in its block bookkeeping).
  std::optional<nand::PageAddress> update(Lpn lpn, const nand::PageAddress& addr);

  /// Drop the mapping (TRIM). Returns the old address if mapped.
  std::optional<nand::PageAddress> unmap(Lpn lpn);

  /// True iff `lpn` currently maps exactly to `addr` — the GC validity test.
  [[nodiscard]] bool maps_to(Lpn lpn, const nand::PageAddress& addr) const;

  [[nodiscard]] Lpn mapped_count() const { return mapped_count_; }

  /// Snapshot support.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct Entry {
    nand::PageAddress addr;
    bool mapped = false;
  };
  std::vector<Entry> entries_;
  Lpn mapped_count_ = 0;
};

}  // namespace rps::ftl
