// rtfFTL: the return-to-fast FPS baseline after Grupp et al. [5]
// (Section 4.1).
//
// Each chip keeps a small pool of active blocks (8 in the paper's setup).
// Host writes are served from any active block whose next FPS page is an
// LSB page, giving a bounded pool of fast pages for bursts. When the pool
// is exhausted, writes fall back to MSB pages — and every MSB program must
// first back up its paired LSB page (a read plus a program to a backup
// block), because the MSB program is destructive and rtfFTL must survive
// sudden power-off. During idle times, garbage collection aggressively
// consumes MSB pages so the next burst again finds LSB frontiers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/ftl/ftl_base.hpp"
#include "src/nand/program_order.hpp"

namespace rps::ftl {

class RtfFtl : public FtlBase {
 public:
  explicit RtfFtl(const FtlConfig& config);

  [[nodiscard]] std::string_view name() const override { return "rtfFTL"; }

  void on_idle_plan(Microseconds now, Microseconds deadline) override;

  /// Active blocks on `chip` whose next FPS page is an LSB page — the
  /// currently available fast-write pool (observable for tests).
  [[nodiscard]] std::uint32_t lsb_ready_cursors(std::uint32_t chip) const;

 protected:
  Result<Microseconds> allocate_host_page(std::uint32_t chip, Lpn lpn,
                                          nand::PageData data, Microseconds now,
                                          double buffer_utilization) override;
  Result<Microseconds> allocate_gc_page(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                        Microseconds now, bool background) override;

  void save_extra(ser::Writer& w) const override;
  void load_extra(ser::Reader& r) override;

 private:
  struct Cursor {
    bool valid = false;
    std::uint32_t block = 0;
    std::uint32_t next = 0;
  };

  [[nodiscard]] nand::PageType next_type(const Cursor& cursor) const {
    return order_[cursor.next].type;
  }

  /// Index of a valid cursor on `chip` whose next page has `type`.
  std::optional<std::size_t> find_cursor(std::uint32_t chip, nand::PageType type) const;

  /// Fill an empty cursor slot with a fresh block, if possible.
  std::optional<std::size_t> replenish_slot(std::uint32_t chip, Microseconds now, bool gc);

  /// Program at a specific cursor: pays the paired-LSB backup before MSB
  /// programs, advances the cursor, commits the mapping.
  Result<Microseconds> append_at(std::uint32_t chip, std::size_t slot, Lpn lpn,
                                 nand::PageData data, Microseconds now, bool gc);

  /// Copy the paired LSB page to a backup block before `msb_addr` is
  /// programmed; returns when the backup is durable.
  Microseconds backup_paired_lsb(const nand::PageAddress& msb_addr, Microseconds now);

  nand::ProgramOrder order_;
  std::vector<std::vector<Cursor>> actives_;  // [chip][slot]
  std::vector<Cursor> backup_;                // per-chip backup block cursor
  /// Host LSB writes since the last idle-time MSB consumption: the idle GC
  /// consumes a matching amount of MSB capacity (capacity balance — every
  /// LSB-skewed burst must eventually be paid for with MSB programs).
  std::vector<std::uint64_t> lsb_debt_;
  std::uint64_t skipped_backups_ = 0;
};

}  // namespace rps::ftl
