#include "src/ftl/page_ftl.hpp"

#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

PageFtl::PageFtl(const FtlConfig& config, nand::SequenceKind kind)
    : FtlBase(config, kind),
      order_(nand::fps_order(config.geometry.wordlines_per_block)),
      slots_(std::max<std::uint32_t>(1, config.write_stream_slots)),
      active_(static_cast<std::size_t>(config.geometry.num_units()) * slots_) {}

Result<std::uint32_t> PageFtl::activate_block(std::uint32_t chip, Microseconds now,
                                              bool gc, BlockUse use) {
  if (gc) return blocks_.allocate(chip, use, /*reserve=*/0);
  Result<std::uint32_t> block = blocks_.allocate(chip, use, config_.gc_reserve_blocks);
  if (block.is_ok()) return block;
  const Status freed = ensure_free_block(chip, now);
  if (!freed.is_ok()) return freed.code();
  return blocks_.allocate(chip, use, /*reserve=*/0);
}

Result<Microseconds> PageFtl::append_to_active(std::uint32_t chip, Lpn lpn,
                                               nand::PageData data, Microseconds now,
                                               bool gc, std::uint32_t slot) {
  ActiveCursor& cursor = cursor_at(chip, slot);
  if (!cursor.valid || cursor.exhausted(order_)) {
    // Careful with reentrancy: a host-path allocation below may trigger
    // foreground GC, whose relocation copies recurse into this function and
    // install (and partially fill) a fresh cursor themselves. Clobbering it
    // afterwards would orphan a half-written active block — a permanent
    // capacity leak. So make room first, then re-check the cursor.
    if (!gc && blocks_.free_blocks(chip) <= config_.gc_reserve_blocks) {
      const Status freed = ensure_free_block(chip, now);
      if (!freed.is_ok() && !(cursor.valid && !cursor.exhausted(order_))) {
        return freed.code();
      }
    }
    if (!cursor.valid || cursor.exhausted(order_)) {
      Result<std::uint32_t> block = blocks_.allocate(
          chip, BlockUse::kActive, gc ? 0 : config_.gc_reserve_blocks);
      if (!block.is_ok()) return block.code();
      cursor = ActiveCursor{.valid = true, .block = block.value(), .next = 0};
    }
  }
  const nand::PagePos pos = order_[cursor.next];
  const nand::PageAddress addr{chip, cursor.block, pos};

  const Microseconds start = before_program(addr, data, now, gc);
  Result<nand::OpTiming> timing = device_.program(addr, std::move(data), start);
  assert(timing.is_ok());  // the cursor follows the device's own order
  ++cursor.next;
  if (cursor.exhausted(order_)) {
    blocks_.set_use({chip, cursor.block}, BlockUse::kFull);
    cursor.valid = false;
  }
  commit_mapping(lpn, addr);
  if (!gc) {
    if (pos.type == nand::PageType::kLsb) {
      ++stats_.host_lsb_writes;
    } else {
      ++stats_.host_msb_writes;
    }
  }
  after_program(addr, timing.value().complete);
  return timing.value().complete;
}

Result<Microseconds> PageFtl::allocate_host_page(std::uint32_t chip, Lpn lpn,
                                                 nand::PageData data, Microseconds now,
                                                 double buffer_utilization) {
  (void)buffer_utilization;  // pageFTL is asymmetry-oblivious
  return append_to_active(chip, lpn, std::move(data), now, /*gc=*/false,
                          stream_slot(current_stream()));
}

Result<Microseconds> PageFtl::allocate_gc_page(std::uint32_t chip, Lpn lpn,
                                               nand::PageData data, Microseconds now,
                                               bool background) {
  (void)background;
  return append_to_active(chip, lpn, std::move(data), now, /*gc=*/true);
}

void PageFtl::save_extra(ser::Writer& w) const {
  w.u64(active_.size());
  for (const ActiveCursor& c : active_) {
    w.boolean(c.valid);
    w.u32(c.block);
    w.u32(c.next);
  }
}

void PageFtl::load_extra(ser::Reader& r) {
  if (r.u64() != active_.size()) {
    r.fail();
    return;
  }
  for (ActiveCursor& c : active_) {
    c.valid = r.boolean();
    c.block = r.u32();
    c.next = r.u32();
  }
}

}  // namespace rps::ftl
