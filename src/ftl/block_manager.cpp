#include "src/ftl/block_manager.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

BlockManager::BlockManager(std::uint32_t chips, std::uint32_t blocks_per_chip,
                           std::uint32_t pages_per_block)
    : blocks_per_chip_(blocks_per_chip), pages_per_block_(pages_per_block) {
  per_chip_.resize(chips);
  for (ChipState& chip : per_chip_) {
    chip.blocks.resize(blocks_per_chip);
    for (std::uint32_t b = 0; b < blocks_per_chip; ++b) chip.free.push_back(b);
  }
}

Result<std::uint32_t> BlockManager::allocate(std::uint32_t chip, BlockUse use,
                                             std::uint32_t reserve) {
  assert(use != BlockUse::kFree);
  assert(chip < per_chip_.size());
  ChipState& state = per_chip_[chip];
  if (state.free.size() <= reserve) return ErrorCode::kNoFreeBlock;
  const std::uint32_t block = state.free.front();
  state.free.pop_front();
  BlockInfo& bi = state.blocks[block];
  assert(bi.use == BlockUse::kFree);
  bi.use = use;
  bi.valid_pages = 0;
  bi.written_pages = 0;
  bi.gc_cursor = 0;  // fresh life: any stale scan position is void
  return block;
}

void BlockManager::set_use(nand::BlockAddress addr, BlockUse use) {
  assert(use != BlockUse::kFree);  // use release() to free a block
  ChipState& chip = per_chip_[addr.chip];
  BlockInfo& bi = chip.blocks[addr.block];
  const BlockUse old = bi.use;
  bi.use = use;
  if (use == BlockUse::kFull) {
    note_full_gain(chip, bi);  // new GC candidate may raise the max
  } else if (old == BlockUse::kFull) {
    chip.gain_dirty = true;  // candidate left the set; max may shrink
  }
}

BlockUse BlockManager::use(nand::BlockAddress addr) const { return info(addr).use; }

void BlockManager::release(nand::BlockAddress addr) {
  ChipState& chip = per_chip_[addr.chip];
  BlockInfo& bi = chip.blocks[addr.block];
  assert(bi.use != BlockUse::kFree);
  assert(bi.valid_pages == 0);
  if (bi.use == BlockUse::kFull) chip.gain_dirty = true;
  bi.use = BlockUse::kFree;
  bi.valid_pages = 0;
  bi.written_pages = 0;
  bi.gc_cursor = 0;
  chip.free.push_back(addr.block);
}

void BlockManager::retire(nand::BlockAddress addr) {
  ChipState& chip = per_chip_[addr.chip];
  BlockInfo& bi = chip.blocks[addr.block];
  assert(bi.use != BlockUse::kRetired);
  assert(bi.valid_pages == 0);
  if (bi.use == BlockUse::kFree) {
    const std::size_t at = chip.free.find(addr.block);
    assert(at < chip.free.size());
    chip.free.erase_at(at);
  }
  if (bi.use == BlockUse::kFull) chip.gain_dirty = true;
  bi.use = BlockUse::kRetired;
  bi.valid_pages = 0;
  bi.written_pages = 0;
  bi.gc_cursor = 0;
}

std::uint32_t BlockManager::retired_blocks(std::uint32_t chip) const {
  std::uint32_t retired = 0;
  for (const BlockInfo& bi : per_chip_.at(chip).blocks) {
    if (bi.use == BlockUse::kRetired) ++retired;
  }
  return retired;
}

void BlockManager::reclaim(nand::BlockAddress addr, BlockUse use) {
  assert(use != BlockUse::kFree);
  ChipState& chip = per_chip_[addr.chip];
  BlockInfo& bi = chip.blocks[addr.block];
  if (bi.use != BlockUse::kFree) return;
  const std::size_t at = chip.free.find(addr.block);
  assert(at < chip.free.size());
  chip.free.erase_at(at);
  bi.use = use;
  // Every page of the block was written before its (voided) erase was
  // issued; valid counts are restored by the caller's mapping fixups.
  bi.written_pages = pages_per_block_;
  bi.valid_pages = 0;
  bi.gc_cursor = 0;
  if (use == BlockUse::kFull) note_full_gain(chip, bi);
}

void BlockManager::remove_valid(nand::BlockAddress addr) {
  ChipState& chip = per_chip_[addr.chip];
  BlockInfo& bi = chip.blocks[addr.block];
  assert(bi.valid_pages > 0);
  --bi.valid_pages;
  --chip.valid_pages;
  // Invalidation raises a full block's reclaim gain; keep the cache exact.
  if (bi.use == BlockUse::kFull) note_full_gain(chip, bi);
}

std::uint64_t BlockManager::total_free_blocks() const {
  std::uint64_t total = 0;
  for (const ChipState& chip : per_chip_) total += chip.free.size();
  return total;
}

std::optional<std::uint32_t> BlockManager::pick_victim(std::uint32_t chip) const {
  // The cached maximum makes this a first-hit scan: the earliest kFull
  // block attaining it is exactly the block the greedy max scan returned
  // (strict-greater kept the first of equal maxima).
  const std::uint32_t best_invalid = best_victim_gain(chip);
  if (best_invalid == 0) return std::nullopt;
  const ChipState& state = per_chip_[chip];
  for (std::uint32_t b = 0; b < state.blocks.size(); ++b) {
    const BlockInfo& bi = state.blocks[b];
    if (bi.use != BlockUse::kFull) continue;
    if (bi.written_pages - bi.valid_pages == best_invalid) return b;
  }
  assert(false && "gain cache out of sync with block set");
  return std::nullopt;
}

std::uint32_t BlockManager::best_victim_gain(std::uint32_t chip) const {
  assert(chip < per_chip_.size());
  const ChipState& state = per_chip_[chip];
  if (state.gain_dirty) {
    std::uint32_t best_invalid = 0;
    for (const BlockInfo& bi : state.blocks) {
      if (bi.use != BlockUse::kFull) continue;
      best_invalid = std::max(best_invalid, bi.written_pages - bi.valid_pages);
    }
    state.best_gain = best_invalid;
    state.gain_dirty = false;
  }
  return state.best_gain;
}

void BlockManager::save(ser::Writer& w) const {
  w.u64(per_chip_.size());
  for (const ChipState& chip : per_chip_) {
    w.u64(chip.blocks.size());
    for (const BlockInfo& bi : chip.blocks) {
      w.u8(static_cast<std::uint8_t>(bi.use));
      w.u32(bi.valid_pages);
      w.u32(bi.written_pages);
    }
    w.u64(chip.free.size());
    for (std::size_t i = 0; i < chip.free.size(); ++i) w.u32(chip.free[i]);
    w.u64(chip.valid_pages);
  }
}

void BlockManager::load(ser::Reader& r) {
  if (r.u64() != per_chip_.size()) {
    r.fail();
    return;
  }
  for (ChipState& chip : per_chip_) {
    if (r.u64() != chip.blocks.size()) {
      r.fail();
      return;
    }
    for (BlockInfo& bi : chip.blocks) {
      const std::uint8_t raw = r.u8();
      if (raw > static_cast<std::uint8_t>(BlockUse::kRetired)) {
        r.fail();
        return;
      }
      bi.use = static_cast<BlockUse>(raw);
      bi.valid_pages = r.u32();
      bi.written_pages = r.u32();
      bi.gc_cursor = 0;  // conservative: restored blocks rescan from 0
    }
    chip.free.clear();
    const std::uint64_t free = r.u64();
    if (free > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < free; ++i) chip.free.push_back(r.u32());
    chip.valid_pages = r.u64();
    chip.gain_dirty = true;
  }
}

}  // namespace rps::ftl
