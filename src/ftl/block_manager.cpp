#include "src/ftl/block_manager.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

BlockManager::BlockManager(std::uint32_t chips, std::uint32_t blocks_per_chip,
                           std::uint32_t pages_per_block)
    : blocks_per_chip_(blocks_per_chip), pages_per_block_(pages_per_block) {
  per_chip_.resize(chips);
  for (ChipState& chip : per_chip_) {
    chip.blocks.resize(blocks_per_chip);
    for (std::uint32_t b = 0; b < blocks_per_chip; ++b) chip.free.push_back(b);
  }
}

Result<std::uint32_t> BlockManager::allocate(std::uint32_t chip, BlockUse use,
                                             std::uint32_t reserve) {
  assert(use != BlockUse::kFree);
  ChipState& state = per_chip_.at(chip);
  if (state.free.size() <= reserve) return ErrorCode::kNoFreeBlock;
  const std::uint32_t block = state.free.front();
  state.free.pop_front();
  BlockInfo& bi = state.blocks[block];
  assert(bi.use == BlockUse::kFree);
  bi.use = use;
  bi.valid_pages = 0;
  bi.written_pages = 0;
  return block;
}

void BlockManager::set_use(nand::BlockAddress addr, BlockUse use) {
  assert(use != BlockUse::kFree);  // use release() to free a block
  info(addr).use = use;
}

BlockUse BlockManager::use(nand::BlockAddress addr) const { return info(addr).use; }

void BlockManager::release(nand::BlockAddress addr) {
  BlockInfo& bi = info(addr);
  assert(bi.use != BlockUse::kFree);
  assert(bi.valid_pages == 0);
  bi.use = BlockUse::kFree;
  bi.valid_pages = 0;
  bi.written_pages = 0;
  per_chip_.at(addr.chip).free.push_back(addr.block);
}

void BlockManager::retire(nand::BlockAddress addr) {
  BlockInfo& bi = info(addr);
  assert(bi.use != BlockUse::kRetired);
  assert(bi.valid_pages == 0);
  if (bi.use == BlockUse::kFree) {
    std::deque<std::uint32_t>& free = per_chip_.at(addr.chip).free;
    const auto it = std::find(free.begin(), free.end(), addr.block);
    assert(it != free.end());
    free.erase(it);
  }
  bi.use = BlockUse::kRetired;
  bi.valid_pages = 0;
  bi.written_pages = 0;
}

std::uint32_t BlockManager::retired_blocks(std::uint32_t chip) const {
  std::uint32_t retired = 0;
  for (const BlockInfo& bi : per_chip_.at(chip).blocks) {
    if (bi.use == BlockUse::kRetired) ++retired;
  }
  return retired;
}

void BlockManager::reclaim(nand::BlockAddress addr, BlockUse use) {
  assert(use != BlockUse::kFree);
  BlockInfo& bi = info(addr);
  if (bi.use != BlockUse::kFree) return;
  std::deque<std::uint32_t>& free = per_chip_.at(addr.chip).free;
  const auto it = std::find(free.begin(), free.end(), addr.block);
  assert(it != free.end());
  free.erase(it);
  bi.use = use;
  // Every page of the block was written before its (voided) erase was
  // issued; valid counts are restored by the caller's mapping fixups.
  bi.written_pages = pages_per_block_;
  bi.valid_pages = 0;
}

void BlockManager::remove_valid(nand::BlockAddress addr) {
  BlockInfo& bi = info(addr);
  assert(bi.valid_pages > 0);
  --bi.valid_pages;
  --per_chip_.at(addr.chip).valid_pages;
}

std::uint64_t BlockManager::total_free_blocks() const {
  std::uint64_t total = 0;
  for (const ChipState& chip : per_chip_) total += chip.free.size();
  return total;
}

std::optional<std::uint32_t> BlockManager::pick_victim(std::uint32_t chip) const {
  const ChipState& state = per_chip_.at(chip);
  std::optional<std::uint32_t> best;
  std::uint32_t best_invalid = 0;
  for (std::uint32_t b = 0; b < state.blocks.size(); ++b) {
    const BlockInfo& bi = state.blocks[b];
    if (bi.use != BlockUse::kFull) continue;
    const std::uint32_t invalid = bi.written_pages - bi.valid_pages;
    if (invalid > best_invalid) {
      best_invalid = invalid;
      best = b;
    }
  }
  return best;
}

std::uint32_t BlockManager::best_victim_gain(std::uint32_t chip) const {
  const ChipState& state = per_chip_.at(chip);
  std::uint32_t best_invalid = 0;
  for (const BlockInfo& bi : state.blocks) {
    if (bi.use != BlockUse::kFull) continue;
    best_invalid = std::max(best_invalid, bi.written_pages - bi.valid_pages);
  }
  return best_invalid;
}

void BlockManager::save(ser::Writer& w) const {
  w.u64(per_chip_.size());
  for (const ChipState& chip : per_chip_) {
    w.u64(chip.blocks.size());
    for (const BlockInfo& bi : chip.blocks) {
      w.u8(static_cast<std::uint8_t>(bi.use));
      w.u32(bi.valid_pages);
      w.u32(bi.written_pages);
    }
    w.u64(chip.free.size());
    for (const std::uint32_t b : chip.free) w.u32(b);
    w.u64(chip.valid_pages);
  }
}

void BlockManager::load(ser::Reader& r) {
  if (r.u64() != per_chip_.size()) {
    r.fail();
    return;
  }
  for (ChipState& chip : per_chip_) {
    if (r.u64() != chip.blocks.size()) {
      r.fail();
      return;
    }
    for (BlockInfo& bi : chip.blocks) {
      const std::uint8_t raw = r.u8();
      if (raw > static_cast<std::uint8_t>(BlockUse::kRetired)) {
        r.fail();
        return;
      }
      bi.use = static_cast<BlockUse>(raw);
      bi.valid_pages = r.u32();
      bi.written_pages = r.u32();
    }
    chip.free.clear();
    const std::uint64_t free = r.u64();
    if (free > r.remaining()) {
      r.fail();
      return;
    }
    for (std::uint64_t i = 0; i < free; ++i) chip.free.push_back(r.u32());
    chip.valid_pages = r.u64();
  }
}

}  // namespace rps::ftl
