// Shared configuration for every FTL under test.
#pragma once

#include <cstdint>

#include "src/nand/bad_block.hpp"
#include "src/nand/geometry.hpp"
#include "src/nand/timing.hpp"

namespace rps::ftl {

struct FtlConfig {
  nand::Geometry geometry = nand::Geometry::paper();
  nand::TimingSpec timing = nand::TimingSpec::paper();

  /// Bad-block model (spare pool size, factory/grown defect rates). The
  /// all-zero default disables it: no spares reserved, nothing ever fails.
  nand::BadBlockConfig bad_blocks;

  /// Cache-program pipelining on the device: data transfers overlap the
  /// unit's previous cell operation (the original model's behavior).
  bool cache_program = true;

  /// Fraction of physical pages *not* exported as logical capacity
  /// (overprovisioning for GC plus backup-block headroom).
  double overprovisioning = 0.13;

  /// Extra scaling of the exported capacity. FTLs that cannot use every
  /// physical page set this (slcFTL writes only LSB pages: 0.5).
  double capacity_factor = 1.0;

  /// Background GC triggers when a chip's free blocks drop below this
  /// fraction of its blocks (Section 3.2: 10% of total capacity).
  double bgc_free_threshold = 0.10;

  /// Free blocks per chip held back for garbage collection's own use.
  std::uint32_t gc_reserve_blocks = 2;

  /// Background GC yield guard: only relocate a victim in idle time when
  /// it has at least pages_per_block / this-divisor invalid pages.
  std::uint32_t bgc_min_yield_divisor = 4;

  /// Incremental foreground GC: at most this many relocation copies are
  /// piggybacked on one host write when a chip runs low on free blocks.
  std::uint32_t gc_incremental_copies = 4;

  /// Host write-buffer capacity in pages; its utilization u feeds
  /// flexFTL's policy manager.
  std::uint32_t write_buffer_pages = 64;

  /// flexFTL policy parameters (Section 4.1: u_high 80%, u_low 10%,
  /// initial quota 5% of all LSB pages).
  double u_high = 0.80;
  double u_low = 0.10;
  double initial_quota_fraction = 0.05;

  /// rtfFTL: active blocks per chip (Section 4.1 uses 8).
  std::uint32_t rtf_active_blocks = 8;

  /// flexFTL extension (paper's conclusion): predict the next burst's LSB
  /// demand from recent bursts and replenish the quota only that far in
  /// idle time, instead of always refilling to the static ceiling.
  bool use_write_predictor = false;

  /// Static wear leveling: during idle time, if a chip's least-worn full
  /// block trails its most-worn block by at least this many erases, its
  /// (cold) data is migrated so the block re-enters circulation. 0 = off.
  std::uint64_t wear_level_threshold = 0;

  /// Program suspension: reads preempt in-flight programs (read-latency
  /// QoS against 2 ms MSB programs). Off by default, as in the paper's
  /// evaluation hardware.
  bool program_suspend = false;

  /// Read-disturb scrubbing: during idle time, refresh (relocate + erase)
  /// any full block whose reads-since-erase exceed this count. 0 = off.
  std::uint64_t read_scrub_threshold = 0;

  /// Active-block cursor slots for host write streams (pageFTL and its
  /// derivatives). Slot 0 serves the default stream and GC; nonzero
  /// streams (the multi-queue frontend's per-tenant FDP-style hints)
  /// share slots 1..N-1 round-robin, so tenant data lands on distinct
  /// active blocks up to the slot budget — a bounded resource, like FDP's
  /// reclaim-unit handles. 1 = single-cursor legacy behavior.
  std::uint32_t write_stream_slots = 4;

  /// flexFTL hot/cold separation: GC relocation copies get their own
  /// fast-block / slow-block stream, so long-lived (cold) data ages in
  /// blocks of its own instead of diluting hot host blocks — the standard
  /// write-amplification reducer for skewed workloads.
  bool separate_gc_stream = false;

  /// A small configuration for unit tests.
  static FtlConfig tiny() {
    FtlConfig c;
    c.geometry = nand::Geometry::tiny();
    c.timing = nand::TimingSpec::paper();
    c.overprovisioning = 0.25;
    c.gc_reserve_blocks = 1;
    c.write_buffer_pages = 8;
    c.rtf_active_blocks = 2;
    // The tiny device has so few LSB pages that the paper's 5% quota would
    // round to a handful of writes; keep it meaningful for tests.
    c.initial_quota_fraction = 0.5;
    return c;
  }
};

}  // namespace rps::ftl
