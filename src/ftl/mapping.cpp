#include "src/ftl/mapping.hpp"

#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

MappingTable::MappingTable(Lpn exported_pages) : entries_(exported_pages) {}

void MappingTable::save(ser::Writer& w) const {
  w.u64(entries_.size());
  for (const Entry& e : entries_) {
    w.boolean(e.mapped);
    if (e.mapped) {
      w.u32(e.addr.chip);
      w.u32(e.addr.block);
      w.u32(e.addr.pos.wordline);
      w.u8(static_cast<std::uint8_t>(e.addr.pos.type));
    }
  }
}

void MappingTable::load(ser::Reader& r) {
  if (r.u64() != entries_.size()) {
    r.fail();
    return;
  }
  mapped_count_ = 0;
  for (Entry& e : entries_) {
    e.mapped = r.boolean();
    e.addr = nand::PageAddress{};
    if (e.mapped) {
      e.addr.chip = r.u32();
      e.addr.block = r.u32();
      e.addr.pos.wordline = r.u32();
      e.addr.pos.type = static_cast<nand::PageType>(r.u8());
      ++mapped_count_;
    }
  }
}

}  // namespace rps::ftl
