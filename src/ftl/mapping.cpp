#include "src/ftl/mapping.hpp"

#include <cassert>

namespace rps::ftl {

MappingTable::MappingTable(Lpn exported_pages) : entries_(exported_pages) {}

bool MappingTable::is_mapped(Lpn lpn) const {
  return lpn < entries_.size() && entries_[lpn].mapped;
}

Result<nand::PageAddress> MappingTable::lookup(Lpn lpn) const {
  if (lpn >= entries_.size()) return ErrorCode::kOutOfRange;
  if (!entries_[lpn].mapped) return ErrorCode::kNotFound;
  return entries_[lpn].addr;
}

std::optional<nand::PageAddress> MappingTable::update(Lpn lpn, const nand::PageAddress& addr) {
  assert(lpn < entries_.size());
  Entry& e = entries_[lpn];
  std::optional<nand::PageAddress> old;
  if (e.mapped) {
    old = e.addr;
  } else {
    ++mapped_count_;
  }
  e.addr = addr;
  e.mapped = true;
  return old;
}

std::optional<nand::PageAddress> MappingTable::unmap(Lpn lpn) {
  if (lpn >= entries_.size() || !entries_[lpn].mapped) return std::nullopt;
  entries_[lpn].mapped = false;
  --mapped_count_;
  return entries_[lpn].addr;
}

bool MappingTable::maps_to(Lpn lpn, const nand::PageAddress& addr) const {
  return lpn < entries_.size() && entries_[lpn].mapped && entries_[lpn].addr == addr;
}

}  // namespace rps::ftl
