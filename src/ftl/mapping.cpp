#include "src/ftl/mapping.hpp"

#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

MappingTable::MappingTable(Lpn exported_pages) : entries_(exported_pages) {}

bool MappingTable::is_mapped(Lpn lpn) const {
  return lpn < entries_.size() && entries_[lpn].mapped;
}

Result<nand::PageAddress> MappingTable::lookup(Lpn lpn) const {
  if (lpn >= entries_.size()) return ErrorCode::kOutOfRange;
  if (!entries_[lpn].mapped) return ErrorCode::kNotFound;
  return entries_[lpn].addr;
}

std::optional<nand::PageAddress> MappingTable::update(Lpn lpn, const nand::PageAddress& addr) {
  assert(lpn < entries_.size());
  Entry& e = entries_[lpn];
  std::optional<nand::PageAddress> old;
  if (e.mapped) {
    old = e.addr;
  } else {
    ++mapped_count_;
  }
  e.addr = addr;
  e.mapped = true;
  return old;
}

std::optional<nand::PageAddress> MappingTable::unmap(Lpn lpn) {
  if (lpn >= entries_.size() || !entries_[lpn].mapped) return std::nullopt;
  entries_[lpn].mapped = false;
  --mapped_count_;
  return entries_[lpn].addr;
}

bool MappingTable::maps_to(Lpn lpn, const nand::PageAddress& addr) const {
  return lpn < entries_.size() && entries_[lpn].mapped && entries_[lpn].addr == addr;
}

void MappingTable::save(ser::Writer& w) const {
  w.u64(entries_.size());
  for (const Entry& e : entries_) {
    w.boolean(e.mapped);
    if (e.mapped) {
      w.u32(e.addr.chip);
      w.u32(e.addr.block);
      w.u32(e.addr.pos.wordline);
      w.u8(static_cast<std::uint8_t>(e.addr.pos.type));
    }
  }
}

void MappingTable::load(ser::Reader& r) {
  if (r.u64() != entries_.size()) {
    r.fail();
    return;
  }
  mapped_count_ = 0;
  for (Entry& e : entries_) {
    e.mapped = r.boolean();
    e.addr = nand::PageAddress{};
    if (e.mapped) {
      e.addr.chip = r.u32();
      e.addr.block = r.u32();
      e.addr.pos.wordline = r.u32();
      e.addr.pos.type = static_cast<nand::PageType>(r.u8());
      ++mapped_count_;
    }
  }
}

}  // namespace rps::ftl
