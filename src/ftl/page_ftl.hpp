// pageFTL: the FPS-based page-mapping baseline (Section 4.1).
//
// One active block per chip, programmed strictly in the device's fixed
// program sequence, so host writes alternate between fast LSB and slow MSB
// pages regardless of workload. Assumes no sudden power-off, hence no
// paired-page backups — the paper uses it as the performance ceiling of an
// FPS FTL.
//
// The program path exposes two hooks (before_program / after_program) that
// parityFTL layers its pre-backup bookkeeping onto.
#pragma once

#include <optional>
#include <vector>

#include "src/ftl/ftl_base.hpp"
#include "src/nand/program_order.hpp"

namespace rps::ftl {

class PageFtl : public FtlBase {
 public:
  explicit PageFtl(const FtlConfig& config,
                   nand::SequenceKind kind = nand::SequenceKind::kFps);

  [[nodiscard]] std::string_view name() const override { return "pageFTL"; }

 protected:
  /// A block being appended to, with its position in a whole-block order.
  struct ActiveCursor {
    bool valid = false;
    std::uint32_t block = 0;
    std::uint32_t next = 0;

    [[nodiscard]] bool exhausted(const nand::ProgramOrder& order) const {
      return next >= order.size();
    }
  };

  Result<Microseconds> allocate_host_page(std::uint32_t chip, Lpn lpn,
                                          nand::PageData data, Microseconds now,
                                          double buffer_utilization) override;
  Result<Microseconds> allocate_gc_page(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                        Microseconds now, bool background) override;

  void save_extra(ser::Writer& w) const override;
  void load_extra(ser::Reader& r) override;

  /// Append one page at `chip`'s active cursor for `slot` (allocating /
  /// running foreground GC as needed) and commit the mapping. Slot 0 is
  /// the default-stream + GC cursor (the only one that exists
  /// pre-multi-tenant); host writes carrying a stream hint use the slot
  /// FtlBase::stream_slot maps it to, so streams fill distinct blocks.
  Result<Microseconds> append_to_active(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                        Microseconds now, bool gc,
                                        std::uint32_t slot = 0);

  /// Hook: called with the chosen physical page before it is programmed.
  /// May delay the program (return a later time) — parityFTL waits for the
  /// covering parity page to become durable before an MSB program.
  /// `gc` marks relocation copies: those need no backup coverage, because
  /// the victim block is not erased until the relocation completes, so an
  /// interrupted GC pass is simply redone from the intact source.
  virtual Microseconds before_program(const nand::PageAddress& addr,
                                      const nand::PageData& data, Microseconds now,
                                      bool gc) {
    (void)addr;
    (void)data;
    (void)gc;
    return now;
  }

  /// Hook: called after the program completes.
  virtual void after_program(const nand::PageAddress& addr, Microseconds complete) {
    (void)addr;
    (void)complete;
  }

  /// Allocate a fresh active block on `chip` (foreground GC if required for
  /// host writes; GC allocations dip into the reserve).
  Result<std::uint32_t> activate_block(std::uint32_t chip, Microseconds now, bool gc,
                                       BlockUse use = BlockUse::kActive);

  [[nodiscard]] const nand::ProgramOrder& order() const { return order_; }

  /// The cursor of (chip, slot) — fixed-size (never reallocates, so
  /// references stay valid across the GC recursion in append_to_active).
  [[nodiscard]] ActiveCursor& cursor_at(std::uint32_t chip, std::uint32_t slot) {
    return active_[chip * slots_ + slot];
  }

  nand::ProgramOrder order_;  // the device's FPS order, one per block shape
  std::uint32_t slots_;       // cursor slots per chip (config.write_stream_slots)
  std::vector<ActiveCursor> active_;  // [chip][slot], flattened
};

}  // namespace rps::ftl
