// Per-chip block bookkeeping shared by all FTLs: free lists, block roles,
// valid-page counts and greedy victim selection.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/nand/address.hpp"
#include "src/util/result.hpp"
#include "src/util/ring_buffer.hpp"

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::ftl {

/// How a block is currently used by the FTL.
enum class BlockUse : std::uint8_t {
  kFree = 0,
  kActive,   // host/GC data being appended (fast or slow phase)
  kFull,     // completely written, GC candidate
  kBackup,   // holds parity / paired-page backup pages
  kRetired,  // went bad with no spare left; permanently out of service
};

class BlockManager {
 public:
  BlockManager(std::uint32_t chips, std::uint32_t blocks_per_chip,
               std::uint32_t pages_per_block);

  [[nodiscard]] std::uint32_t chips() const { return static_cast<std::uint32_t>(per_chip_.size()); }
  [[nodiscard]] std::uint32_t blocks_per_chip() const { return blocks_per_chip_; }
  [[nodiscard]] std::uint32_t pages_per_block() const { return pages_per_block_; }

  /// Allocate a free block on `chip`. Host allocations respect `reserve`
  /// (they fail when at most `reserve` free blocks remain, leaving room for
  /// GC); pass reserve = 0 for GC's own allocations.
  Result<std::uint32_t> allocate(std::uint32_t chip, BlockUse use, std::uint32_t reserve);

  /// Move a block between roles (e.g. kActive -> kFull when it fills).
  void set_use(nand::BlockAddress addr, BlockUse use);
  [[nodiscard]] BlockUse use(nand::BlockAddress addr) const;

  /// Return an erased block to the free pool.
  void release(nand::BlockAddress addr);

  /// Permanently remove a block from service: it went bad and the device
  /// had no spare left to remap it onto. Works from any role (a free
  /// block is pulled out of the free pool; an in-use block must already
  /// hold no valid pages). The chip's usable capacity shrinks by one
  /// block — effective overprovisioning attrition, never undone.
  void retire(nand::BlockAddress addr);

  /// Retired blocks on `chip` (capacity-attrition observability).
  [[nodiscard]] std::uint32_t retired_blocks(std::uint32_t chip) const;

  /// Pull a specific block back out of the free pool: crash recovery
  /// found live data in it (its erase was voided by a power loss that
  /// landed before the erase began). The block re-enters as `use` with
  /// every page accounted written; valid-page counts are re-added by the
  /// caller's mapping fixups. No-op unless the block is free.
  void reclaim(nand::BlockAddress addr, BlockUse use);

  /// Valid-page accounting (driven by mapping updates).
  void add_valid(nand::BlockAddress addr) {
    ChipState& chip = per_chip_[addr.chip];
    BlockInfo& bi = chip.blocks[addr.block];
    ++bi.valid_pages;
    ++chip.valid_pages;
    // A full block gaining a valid page loses reclaim gain; the cached
    // per-chip maximum may shrink, so it must be recomputed on demand.
    if (bi.use == BlockUse::kFull) chip.gain_dirty = true;
  }
  void remove_valid(nand::BlockAddress addr);
  [[nodiscard]] std::uint32_t valid_pages(nand::BlockAddress addr) const {
    return info(addr).valid_pages;
  }
  /// Total valid pages on a chip. The chip's write headroom —
  /// physical pages minus this — is what host-write placement balances.
  [[nodiscard]] std::uint64_t chip_valid_pages(std::uint32_t chip) const {
    assert(chip < per_chip_.size());
    return per_chip_[chip].valid_pages;
  }

  /// Written-page accounting (monotonic until erase).
  void add_written(nand::BlockAddress addr) {
    ChipState& chip = per_chip_[addr.chip];
    BlockInfo& bi = chip.blocks[addr.block];
    ++bi.written_pages;
    if (bi.use == BlockUse::kFull) note_full_gain(chip, bi);
  }
  [[nodiscard]] std::uint32_t written_pages(nand::BlockAddress addr) const {
    return info(addr).written_pages;
  }

  [[nodiscard]] std::uint32_t free_blocks(std::uint32_t chip) const {
    assert(chip < per_chip_.size());
    return static_cast<std::uint32_t>(per_chip_[chip].free.size());
  }
  [[nodiscard]] std::uint64_t total_free_blocks() const;
  [[nodiscard]] double free_fraction(std::uint32_t chip) const {
    return static_cast<double>(free_blocks(chip)) / blocks_per_chip_;
  }

  /// Greedy victim selection among kFull blocks of `chip`: the block with
  /// the most invalid pages. Blocks with no invalid page are not victims
  /// (relocating them reclaims nothing).
  [[nodiscard]] std::optional<std::uint32_t> pick_victim(std::uint32_t chip) const;

  /// Invalid pages of a chip's best victim (0 if none).
  [[nodiscard]] std::uint32_t best_victim_gain(std::uint32_t chip) const;

  /// GC scan-resume cursor: the first wordline of `addr` that might still
  /// hold a valid page. Pages below it were seen invalid (or relocated) by
  /// an earlier scan of this block life — on a kFull block neither can
  /// come back, so resuming there skips exactly the pages a fresh scan
  /// would skip one by one. Purely an accelerator: never serialized
  /// (snapshots restore it to 0, a conservative full rescan) and reset
  /// whenever the block changes life (allocate/release/retire/reclaim).
  [[nodiscard]] std::uint32_t gc_cursor(nand::BlockAddress addr) const {
    return info(addr).gc_cursor;
  }
  void set_gc_cursor(nand::BlockAddress addr, std::uint32_t wl) {
    info(addr).gc_cursor = wl;
  }

  /// Snapshot support. Free lists are FIFO rings whose ORDER is behavior
  /// (allocation round-trips through them FIFO), so they serialize
  /// front-to-back verbatim.
  void save(ser::Writer& w) const;
  void load(ser::Reader& r);

 private:
  struct BlockInfo {
    BlockUse use = BlockUse::kFree;
    std::uint32_t valid_pages = 0;
    std::uint32_t written_pages = 0;
    std::uint32_t gc_cursor = 0;  // see gc_cursor(); not serialized
  };
  struct ChipState {
    std::vector<BlockInfo> blocks;
    RingBuffer<std::uint32_t> free;
    std::uint64_t valid_pages = 0;
    // Cached best_victim_gain(): max invalid pages over kFull blocks. The
    // cache is exact while clean; events that can only *raise* a block's
    // gain update it in place (note_full_gain), events that may lower the
    // maximum (a full block leaving the set or gaining a valid page) mark
    // it dirty for a lazy O(blocks) rescan. Queried once per host write by
    // the incremental-GC pacing check, so it must not rescan every call.
    mutable std::uint32_t best_gain = 0;
    mutable bool gain_dirty = true;
  };

  [[nodiscard]] const BlockInfo& info(nand::BlockAddress addr) const {
    assert(addr.chip < per_chip_.size());
    assert(addr.block < per_chip_[addr.chip].blocks.size());
    return per_chip_[addr.chip].blocks[addr.block];
  }
  [[nodiscard]] BlockInfo& info(nand::BlockAddress addr) {
    assert(addr.chip < per_chip_.size());
    assert(addr.block < per_chip_[addr.chip].blocks.size());
    return per_chip_[addr.chip].blocks[addr.block];
  }

  /// A kFull block's gain grew (valid dropped or written rose): fold it
  /// into the clean cache; a dirty cache will rescan anyway.
  static void note_full_gain(const ChipState& chip, const BlockInfo& bi) {
    if (!chip.gain_dirty) {
      chip.best_gain = std::max(chip.best_gain, bi.written_pages - bi.valid_pages);
    }
  }

  std::uint32_t blocks_per_chip_;
  std::uint32_t pages_per_block_;
  std::vector<ChipState> per_chip_;
};

}  // namespace rps::ftl
