#include "src/ftl/ftl_base.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/trace.hpp"
#include "src/util/serialize.hpp"

namespace rps::ftl {

Lpn FtlBase::compute_exported_pages(const FtlConfig& config) {
  // Spare blocks reserved for bad-block remapping are not FTL-addressable
  // and never back exported capacity. With no reservation this is exactly
  // geometry.total_pages().
  const nand::Geometry& g = config.geometry;
  const std::uint64_t visible_blocks =
      g.blocks_per_chip - config.bad_blocks.spare_blocks_per_unit;
  const auto total = static_cast<double>(static_cast<std::uint64_t>(g.num_units()) *
                                         visible_blocks * g.pages_per_block());
  return static_cast<Lpn>(
      std::floor(total * (1.0 - config.overprovisioning) * config.capacity_factor));
}

FtlBase::FtlBase(const FtlConfig& config, nand::SequenceKind kind)
    : config_(config),
      device_(config.geometry, config.timing, kind, config.bad_blocks),
      mapping_(compute_exported_pages(config)),
      blocks_(config.geometry.num_units(), device_.visible_blocks(),
              config.geometry.pages_per_block()) {
  device_.set_program_suspend(config.program_suspend);
  device_.set_cache_program(config.cache_program);
  // Factory-bad visible blocks the device could not remap are dead on
  // arrival: drop them from the pools before any allocation happens.
  for (std::uint32_t u = 0; u < config.geometry.num_units(); ++u) {
    for (const std::uint32_t dead : device_.bad_blocks().dead_visible_blocks(u)) {
      blocks_.retire({u, dead});
      ++stats_.retired_blocks;
    }
  }
  // Grown-bad lifecycle events surface through the device as they happen.
  device_.set_bad_block_listener([this](const nand::BadBlockEvent& event) {
    if (event.new_physical >= 0) {
      ++stats_.remapped_blocks;
    } else {
      ++stats_.retired_blocks;
    }
    if (trace_ != nullptr) {
      trace_->record(event.new_physical >= 0 ? obs::EventKind::kBlockRemapped
                                             : obs::EventKind::kBlockRetired,
                     event.unit + 1, event.now, -1, event.visible_block,
                     event.old_physical,
                     event.new_physical >= 0
                         ? static_cast<std::uint64_t>(event.new_physical)
                         : static_cast<std::uint64_t>(event.cause));
    }
  });
}

std::uint64_t FtlBase::make_signature(Lpn lpn) {
  // splitmix64-style mix of (lpn, version) — unique per write.
  std::uint64_t x = lpn * 0x9e3779b97f4a7c15ull + (++write_version_);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Result<HostOp> FtlBase::host_program(std::uint32_t chip, Lpn lpn,
                                     std::vector<std::uint8_t> bytes, Microseconds now,
                                     double buffer_utilization, std::uint32_t stream) {
  nand::PageData data;
  data.lpn = lpn;
  data.signature = make_signature(lpn);
  data.version = write_version_;
  data.spare = stream & nand::kStreamSpareMask;
  data.bytes = std::move(bytes);
  current_stream_ = stream;
  // Attribution: everything the policy does to place this page — the
  // program itself plus any synchronous backup the policy wraps around
  // it — is host-caused unless a narrower scope (parity flush, GC)
  // re-tags its own ops.
  const Result<Microseconds> done = [&] {
    const nand::CauseScope scope(device_, nand::WriteCause::kHost);
    return allocate_host_page(chip, lpn, std::move(data), now, buffer_utilization);
  }();
  current_stream_ = 0;
  if (!done.is_ok()) return done.code();
  ++stats_.host_write_pages;
  incremental_gc(now);
  return HostOp{done.value()};
}

Result<HostOp> FtlBase::write(Lpn lpn, Microseconds now, double buffer_utilization) {
  if (lpn >= mapping_.exported_pages()) return ErrorCode::kOutOfRange;
  return host_program(pick_chip(), lpn, {}, now, buffer_utilization, /*stream=*/0);
}

Result<HostOp> FtlBase::write_on(std::uint32_t chip, Lpn lpn, Microseconds now,
                                 double buffer_utilization, std::uint32_t stream) {
  if (lpn >= mapping_.exported_pages()) return ErrorCode::kOutOfRange;
  if (chip >= device_.geometry().num_units()) return ErrorCode::kOutOfRange;
  return host_program(chip, lpn, {}, now, buffer_utilization, stream);
}

Result<HostOp> FtlBase::write_data(Lpn lpn, std::vector<std::uint8_t> bytes,
                                   Microseconds now, double buffer_utilization) {
  if (lpn >= mapping_.exported_pages()) return ErrorCode::kOutOfRange;
  return host_program(pick_chip(), lpn, std::move(bytes), now, buffer_utilization,
                      /*stream=*/0);
}

Result<HostOp> FtlBase::read(Lpn lpn, Microseconds now) {
  if (lpn >= mapping_.exported_pages()) return ErrorCode::kOutOfRange;
  const Result<nand::PageAddress> addr = mapping_.lookup(lpn);
  ++stats_.host_read_pages;
  if (!addr.is_ok()) {
    // Never-written page: zero-fill, satisfied without touching the device.
    ++stats_.unmapped_reads;
    return HostOp{now};
  }
  Result<nand::NandDevice::ReadResult> got = device_.read(addr.value(), now);
  assert(got.is_ok());
  if (!got.value().data.is_ok()) {
    ++stats_.read_errors;
    return got.value().data.code();
  }
  return HostOp{got.value().timing.complete};
}

Result<nand::PageData> FtlBase::read_data(Lpn lpn, Microseconds now,
                                          Microseconds* complete) {
  if (complete != nullptr) *complete = now;
  if (lpn >= mapping_.exported_pages()) return ErrorCode::kOutOfRange;
  const Result<nand::PageAddress> addr = mapping_.lookup(lpn);
  if (!addr.is_ok()) {
    ++stats_.unmapped_reads;
    return ErrorCode::kNotFound;
  }
  Result<nand::NandDevice::ReadResult> got = device_.read(addr.value(), now);
  assert(got.is_ok());
  if (complete != nullptr) *complete = got.value().timing.complete;
  if (!got.value().data.is_ok()) {
    ++stats_.read_errors;
    return got.value().data.code();
  }
  return std::move(got.value().data).take();
}

void FtlBase::commit_mapping(Lpn lpn, const nand::PageAddress& addr) {
  const nand::BlockAddress block{addr.chip, addr.block};
  blocks_.add_written(block);
  const std::optional<nand::PageAddress> old = mapping_.update(lpn, addr);
  if (old) blocks_.remove_valid({old->chip, old->block});
  blocks_.add_valid(block);
  if (placement_observer_) placement_observer_(lpn, addr);
}

bool FtlBase::collect_block(std::uint32_t chip, std::uint32_t victim, Microseconds now,
                            Microseconds deadline, bool background,
                            std::uint32_t max_copies, nand::WriteCause cause) {
  // Everything this collection does — copy reads, relocation programs,
  // the victim (and coalesced sibling) erases — is charged to `cause`:
  // kGcCopy by default, kWearLevel/kScrub when the wear leveler or
  // scrubber drives the collection.
  const nand::CauseScope scope(device_, cause);
  if (trace_ == nullptr) {
    return collect_block_impl(chip, victim, now, deadline, background, max_copies);
  }
  const std::uint64_t copies_before = stats_.gc_copy_pages;
  const bool freed = collect_block_impl(chip, victim, now, deadline, background, max_copies);
  const std::uint64_t copies = stats_.gc_copy_pages - copies_before;
  if (copies > 0 || freed) {
    // The migration occupies the chip from `now` to its post-GC busy time.
    const Microseconds busy = device_.chip(chip).busy_until();
    trace_->record(background ? obs::EventKind::kGcBackground
                              : obs::EventKind::kGcForeground,
                   chip + 1, now, std::max<Microseconds>(0, busy - now), victim,
                   copies, freed ? 1 : 0);
    if (freed) {
      trace_->record(obs::EventKind::kBlockReclaimed, chip + 1, now, -1, victim,
                     background ? 1 : 0);
    }
  }
  return freed;
}

bool FtlBase::collect_block_impl(std::uint32_t chip, std::uint32_t victim,
                                 Microseconds now, Microseconds deadline,
                                 bool background, std::uint32_t max_copies) {
  nand::Block& block = device_.block_mut({chip, victim});
  const nand::BlockAddress victim_addr{chip, victim};
  std::uint32_t copies = 0;
  // Resume where the last (budget-capped) scan of this block life left
  // off: everything below the cursor was invalid or already relocated,
  // and on a kFull block neither comes back — a fresh scan would walk
  // those pages only to skip them. The cursor freezes at the first
  // unreadable page so corrupted data is revisited, not silently passed.
  bool frozen = false;
  for (std::uint32_t wl = blocks_.gc_cursor(victim_addr); wl < block.wordlines();
       ++wl) {
    if (!frozen) blocks_.set_gc_cursor(victim_addr, wl);
    for (const nand::PageType type : {nand::PageType::kLsb, nand::PageType::kMsb}) {
      if (blocks_.valid_pages(victim_addr) == 0) break;
      const nand::PagePos pos{wl, type};
      if (block.page_state(pos) != nand::PageState::kValid) continue;
      const nand::PageAddress page_addr{chip, victim, pos};
      // Validity test: does the mapping still point here? (peek — the
      // payload copy is only paid for pages that actually relocate)
      const Lpn lpn = block.peek(pos)->lpn;
      if (!mapping_.maps_to(lpn, page_addr)) continue;
      if (copies >= max_copies) return false;           // out of copy budget
      if (device_.chip(chip).busy_until() >= deadline) return false;  // out of idle budget
      // Charge the copy: page read, then FTL-policy program.
      Result<nand::NandDevice::ReadResult> got = device_.read(page_addr, now);
      assert(got.is_ok());
      if (!got.value().data.is_ok()) {
        frozen = true;  // corrupted page: leave for recovery, keep it in view
        continue;
      }
      Result<Microseconds> programmed =
          allocate_gc_page(chip, lpn, std::move(got.value().data).take(),
                           got.value().timing.complete, background);
      if (!programmed.is_ok()) return false;  // destination exhausted; retry later
      ++stats_.gc_copy_pages;
      ++copies;
    }
  }
  if (blocks_.valid_pages(victim_addr) != 0) return false;
  // Multi-plane erase coalescing: sibling planes of the victim's die that
  // hold a fully-invalid full block at the same block offset can ride the
  // victim's erase inside one aligned multi-plane window. Pure win with
  // planes: the group's erase latency is paid once in wall-clock time.
  const nand::Geometry& geometry = device_.geometry();
  if (geometry.planes_per_chip > 1) {
    std::vector<nand::BlockAddress>& group = erase_group_;
    group.clear();
    group.push_back(victim_addr);
    const std::uint32_t die = geometry.chip_of_unit(chip);
    for (std::uint32_t p = 0; p < geometry.planes_per_chip; ++p) {
      const std::uint32_t sibling = geometry.unit_of(die, p);
      if (sibling == chip) continue;
      const nand::BlockAddress candidate{sibling, victim};
      if (blocks_.use(candidate) != BlockUse::kFull) continue;
      if (blocks_.valid_pages(candidate) != 0) continue;
      group.push_back(candidate);
    }
    if (group.size() > 1) {
      const Result<nand::OpTiming> erased = device_.multi_plane_erase(group, now);
      if (erased.is_ok()) {
        for (const nand::BlockAddress& member : group) {
          blocks_.release(member);
          if (member.chip != chip) {
            ++stats_.coalesced_erases;
            if (trace_ != nullptr) {
              trace_->record(obs::EventKind::kBlockReclaimed, member.chip + 1,
                             now, -1, member.block, background ? 1 : 0);
            }
          }
        }
        if (background) {
          ++stats_.background_gc_blocks;
        } else {
          ++stats_.foreground_gc_blocks;
        }
        return true;
      }
      // A group member hit kBlockBad: fall through to the single-block
      // path, which retires the victim if it is the one that died.
    }
  }
  const Result<nand::OpTiming> erased = erase_block(victim_addr, now);
  if (!erased.is_ok()) {
    assert(erased.code() == ErrorCode::kBlockBad);
    // The worn-out victim was retired instead of freed. Relocation still
    // emptied it, so GC made progress; the caller may pick a new victim.
    return true;
  }
  blocks_.release(victim_addr);
  if (background) {
    ++stats_.background_gc_blocks;
  } else {
    ++stats_.foreground_gc_blocks;
  }
  return true;
}

Result<nand::OpTiming> FtlBase::erase_block(const nand::BlockAddress& addr,
                                            Microseconds now) {
  Result<nand::OpTiming> erased = device_.erase(addr, now);
  if (!erased.is_ok() && erased.code() == ErrorCode::kBlockBad) {
    // Spare pool dry: the device retired the visible address (listener
    // already counted it); mirror that in the allocation bookkeeping.
    blocks_.retire(addr);
  }
  return erased;
}

std::uint32_t FtlBase::pick_chip_impl(const std::vector<std::uint8_t>* eligible) {
  // Place the write on the chip with the most headroom (physical pages not
  // holding valid data), ties broken round-robin. Free-block counts alone
  // are too coarse: a chip whose pages are ~100% valid still shows a few
  // free blocks right after GC, keeps attracting writes, and eventually
  // packs itself into an un-collectable state.
  //
  // The round-robin counter advances on every call, eligible set or not,
  // so the controller's striped picks and the legacy picks walk the same
  // sequence when the whole array is idle.
  const std::uint32_t chips = device_.geometry().num_units();
  const std::uint64_t chip_pages = device_.geometry().pages_per_unit();
  const std::uint32_t start = rr_chip_++ % chips;
  bool found = false;
  std::uint32_t best = start;
  std::uint64_t best_headroom = 0;
  std::uint32_t chip = start;
  for (std::uint32_t i = 0; i < chips; ++i) {
    if (eligible == nullptr || (*eligible)[chip] != 0) {
      const std::uint64_t headroom = chip_pages - blocks_.chip_valid_pages(chip);
      if (!found || headroom > best_headroom) {
        found = true;
        best = chip;
        best_headroom = headroom;
      }
    }
    if (++chip == chips) chip = 0;
  }
  // Callers guarantee a nonempty eligible set; `start` is a safe fallback.
  return best;
}

std::uint32_t FtlBase::pick_chip() { return pick_chip_impl(nullptr); }

std::uint32_t FtlBase::pick_chip_among(const std::vector<std::uint8_t>& eligible) {
  return pick_chip_impl(&eligible);
}

void FtlBase::incremental_gc(Microseconds now) {
  const std::uint32_t chips = device_.geometry().num_units();
  const std::uint32_t chip = igc_rr_chip_++ % chips;
  const std::uint32_t free = blocks_.free_blocks(chip);
  if (free > config_.gc_reserve_blocks + 1) return;
  // Unless critically low, wait for a worthwhile victim — relocating
  // immature victims inflates write amplification for nothing.
  const bool urgent = free <= config_.gc_reserve_blocks;
  if (!urgent && blocks_.best_victim_gain(chip) <
                     blocks_.pages_per_block() / config_.bgc_min_yield_divisor) {
    return;
  }
  const std::optional<std::uint32_t> victim = blocks_.pick_victim(chip);
  if (!victim) return;
  collect_block(chip, *victim, now, kTimeNever, /*background=*/false,
                config_.gc_incremental_copies);
}

Status FtlBase::ensure_free_block(std::uint32_t chip, Microseconds now) {
  while (blocks_.free_blocks(chip) <= config_.gc_reserve_blocks) {
    const std::optional<std::uint32_t> victim = blocks_.pick_victim(chip);
    if (!victim) return Status{ErrorCode::kNoFreeBlock};
    if (!collect_block(chip, *victim, now, kTimeNever, /*background=*/false)) {
      return Status{ErrorCode::kNoFreeBlock};
    }
  }
  return Status::ok();
}

void FtlBase::on_idle_plan(Microseconds now, Microseconds deadline) {
  // Stop background work early enough that an in-flight MSB program (plus
  // its copy read) cannot spill into the next burst's first requests.
  const Microseconds guarded =
      deadline - 2 * config_.timing.program_msb_us;
  if (guarded <= now) return;
  if (config_.wear_level_threshold > 0) static_wear_level(now, guarded);
  if (config_.read_scrub_threshold > 0) scrub_read_disturbed(now, guarded);
  const std::uint32_t chips = device_.geometry().num_units();
  for (std::uint32_t i = 0; i < chips; ++i) {
    const std::uint32_t chip = (bgc_rr_chip_ + i) % chips;
    while (blocks_.free_fraction(chip) < config_.bgc_free_threshold &&
           device_.chip(chip).busy_until() < guarded) {
      // Yield guard: background GC only runs victims that reclaim a decent
      // fraction of a block; low-yield relocation is deferred until
      // invalidation catches up (or foreground GC truly needs the space).
      if (blocks_.best_victim_gain(chip) <
          blocks_.pages_per_block() / config_.bgc_min_yield_divisor) {
        break;
      }
      const std::optional<std::uint32_t> victim = blocks_.pick_victim(chip);
      if (!victim) break;
      const Microseconds start = std::max(now, device_.chip(chip).busy_until());
      if (!collect_block(chip, *victim, start, guarded, /*background=*/true)) break;
    }
  }
  bgc_rr_chip_ = (bgc_rr_chip_ + 1) % chips;
}

Status FtlBase::trim(Lpn lpn) {
  if (lpn >= mapping_.exported_pages()) return Status{ErrorCode::kOutOfRange};
  if (const std::optional<nand::PageAddress> old = mapping_.unmap(lpn)) {
    blocks_.remove_valid({old->chip, old->block});
  }
  return Status::ok();
}

void FtlBase::rebuild_mapping() {
  // Pass 1: scan every valid page's OOB, keeping the newest copy per LPN.
  struct Newest {
    nand::PageAddress addr;
    std::uint64_t version = 0;
    bool present = false;
  };
  std::vector<Newest> newest(mapping_.exported_pages());
  const nand::Geometry& geometry = device_.geometry();
  // Scan the FTL-visible range through the translating accessor: remapped
  // blocks are found under their visible address, and dead physical
  // blocks (bad, unreachable) are never scanned at all.
  for (std::uint32_t chip = 0; chip < geometry.num_units(); ++chip) {
    for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
      if (device_.bad_blocks().is_retired(chip, b)) continue;
      const nand::Block& block = device_.block({chip, b});
      for (std::uint32_t wl = 0; wl < geometry.wordlines_per_block; ++wl) {
        for (const nand::PageType type : {nand::PageType::kLsb, nand::PageType::kMsb}) {
          const nand::PagePos pos{wl, type};
          if (block.page_state(pos) != nand::PageState::kValid) continue;
          const nand::PageData* data = block.peek(pos);
          assert(data != nullptr);
          const nand::PageData& d = *data;
          if (d.spare & nand::kNonHostSpareFlag) continue;  // FTL metadata
          if (d.lpn >= mapping_.exported_pages()) continue; // parity / junk
          Newest& slot = newest[d.lpn];
          if (!slot.present || d.version > slot.version) {
            slot = Newest{{chip, b, pos}, d.version, true};
          }
        }
      }
    }
  }
  // Pass 2: replace the mapping and the valid-page accounting.
  MappingTable fresh(mapping_.exported_pages());
  BlockManager fresh_blocks(geometry.num_units(), device_.visible_blocks(),
                            geometry.pages_per_block());
  // Preserve block roles, written counts and free lists from the old
  // bookkeeping (an FTL snapshots those separately; only the valid counts
  // derive from the media scan).
  fresh_blocks = blocks_;
  for (std::uint32_t chip = 0; chip < geometry.num_units(); ++chip) {
    for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
      while (fresh_blocks.valid_pages({chip, b}) > 0) {
        fresh_blocks.remove_valid({chip, b});
      }
    }
  }
  for (Lpn lpn = 0; lpn < newest.size(); ++lpn) {
    if (!newest[lpn].present) continue;
    const nand::BlockAddress home{newest[lpn].addr.chip, newest[lpn].addr.block};
    // Live data in a block the bookkeeping had freed means its erase was
    // voided by a power loss (charged after the cut, never began): pull
    // the block back out of the free pool. No-op when already in use.
    fresh_blocks.reclaim(home, BlockUse::kFull);
    fresh.update(lpn, newest[lpn].addr);
    fresh_blocks.add_valid(home);
  }
  mapping_ = std::move(fresh);
  blocks_ = std::move(fresh_blocks);
}

void FtlBase::static_wear_level(Microseconds now, Microseconds deadline) {
  for (std::uint32_t chip = 0; chip < device_.num_units(); ++chip) {
    // Migrate trailing cold blocks until none is behind by the threshold
    // (or the idle window closes). Cold data lives in full blocks that
    // stopped cycling; freeing them returns low-wear blocks to rotation.
    while (device_.chip(chip).busy_until() < deadline) {
      std::uint64_t max_erases = 0;
      std::optional<std::uint32_t> coldest;
      std::uint64_t coldest_erases = 0;
      for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
        if (blocks_.use({chip, b}) == BlockUse::kRetired) continue;
        const std::uint64_t erases = device_.block({chip, b}).erase_count();
        max_erases = std::max(max_erases, erases);
        if (blocks_.use({chip, b}) != BlockUse::kFull) continue;
        if (!coldest || erases < coldest_erases) {
          coldest = b;
          coldest_erases = erases;
        }
      }
      if (!coldest || max_erases < coldest_erases + config_.wear_level_threshold) {
        break;
      }
      const Microseconds start = std::max(now, device_.chip(chip).busy_until());
      if (!collect_block(chip, *coldest, start, deadline, /*background=*/true,
                         UINT32_MAX, nand::WriteCause::kWearLevel)) {
        break;  // out of idle budget mid-block; resume next idle
      }
    }
  }
}

void FtlBase::scrub_read_disturbed(Microseconds now, Microseconds deadline) {
  for (std::uint32_t chip = 0; chip < device_.num_units(); ++chip) {
    for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
      if (device_.chip(chip).busy_until() >= deadline) break;
      if (blocks_.use({chip, b}) != BlockUse::kFull) continue;
      if (device_.block({chip, b}).reads_since_erase() <
          config_.read_scrub_threshold) {
        continue;
      }
      const Microseconds start = std::max(now, device_.chip(chip).busy_until());
      if (collect_block(chip, b, start, deadline, /*background=*/true, UINT32_MAX,
                        nand::WriteCause::kScrub)) {
        ++stats_.scrubbed_blocks;
      }
    }
  }
}

bool FtlBase::check_consistency() const {
  std::uint64_t valid_total = 0;
  for (std::uint32_t c = 0; c < device_.num_units(); ++c) {
    for (std::uint32_t b = 0; b < device_.visible_blocks(); ++b) {
      valid_total += blocks_.valid_pages({c, b});
    }
  }
  if (valid_total != mapping_.mapped_count()) return false;
  for (Lpn lpn = 0; lpn < mapping_.exported_pages(); ++lpn) {
    const Result<nand::PageAddress> addr = mapping_.lookup(lpn);
    if (!addr.is_ok()) continue;
    const nand::Block& block = device_.block({addr.value().chip, addr.value().block});
    if (!block.is_programmed(addr.value().pos)) return false;
  }
  return true;
}

void FtlBase::save_state(ser::Writer& w) const {
  device_.save(w);
  mapping_.save(w);
  blocks_.save(w);
  // Stats stream in X-macro list order: a new counter added to the list
  // serializes automatically (bump sim::Snapshot::kVersion when it does).
#define RPS_FIELD(name) w.u64(stats_.name);
  RPS_FTL_STAT_FIELDS(RPS_FIELD)
#undef RPS_FIELD
  w.u32(rr_chip_);
  w.u32(bgc_rr_chip_);
  w.u32(igc_rr_chip_);
  w.u64(write_version_);
  w.u32(current_stream_);
  save_extra(w);
}

void FtlBase::load_state(ser::Reader& r) {
  device_.load(r);
  mapping_.load(r);
  blocks_.load(r);
#define RPS_FIELD(name) stats_.name = r.u64();
  RPS_FTL_STAT_FIELDS(RPS_FIELD)
#undef RPS_FIELD
  rr_chip_ = r.u32();
  bgc_rr_chip_ = r.u32();
  igc_rr_chip_ = r.u32();
  write_version_ = r.u64();
  current_stream_ = r.u32();
  load_extra(r);
}

void FtlBase::save_extra(ser::Writer& w) const { (void)w; }

void FtlBase::load_extra(ser::Reader& r) { (void)r; }

}  // namespace rps::ftl
