// slcFTL: the capacity-sacrificing fast baseline after Lee et al. [4]
// (paper Section 5, related work).
//
// Every block is used in SLC mode: only its LSB pages are written, each at
// LSB program speed. Writes are always fast and — because no MSB program
// ever disturbs an LSB page — inherently safe against sudden power-off
// with no backup scheme at all. The price is half the device capacity,
// which is exactly the drawback the paper contrasts flexFTL against:
// "all the MSB pages of a block are skipped when fast LSB-page writes are
// used, thus wasting half the capacity of the block."
#pragma once

#include <vector>

#include "src/ftl/ftl_base.hpp"

namespace rps::ftl {

class SlcFtl : public FtlBase {
 public:
  explicit SlcFtl(const FtlConfig& config);

  [[nodiscard]] std::string_view name() const override { return "slcFTL"; }

 protected:
  Result<Microseconds> allocate_host_page(std::uint32_t chip, Lpn lpn,
                                          nand::PageData data, Microseconds now,
                                          double buffer_utilization) override;
  Result<Microseconds> allocate_gc_page(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                        Microseconds now, bool background) override;

  void save_extra(ser::Writer& w) const override;
  void load_extra(ser::Reader& r) override;

 private:
  struct Cursor {
    bool valid = false;
    std::uint32_t block = 0;
    std::uint32_t next_wordline = 0;
  };

  /// Append a page at `chip`'s SLC cursor, allocating (and switching the
  /// fresh block to SLC mode) as needed.
  Result<Microseconds> append(std::uint32_t chip, Lpn lpn, nand::PageData data,
                              Microseconds now, bool gc);

  static FtlConfig halved(FtlConfig config) {
    // Only LSB pages carry data: the exported space is half of what the
    // same geometry exports in MLC mode.
    config.capacity_factor *= 0.5;
    return config;
  }

  std::vector<Cursor> cursors_;  // per chip
};

}  // namespace rps::ftl
