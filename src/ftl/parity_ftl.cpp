#include "src/ftl/parity_ftl.hpp"

#include <algorithm>
#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

ParityFtl::ParityFtl(const FtlConfig& config)
    : PageFtl(config), backup_(config.geometry.num_units()) {
  // Coverage tracks at most one entry per in-flight LSB word line; sizing
  // the table to the device's block count up front keeps the steady-state
  // write path free of rehashes.
  parity_durable_at_.reserve(config.geometry.num_units() *
                             config.geometry.blocks_per_chip);
}

Microseconds ParityFtl::flush_parity(Microseconds now) {
  if (pending_.empty()) return now;
  if (pending_.size() < kLsbPagesPerParity) ++partial_flushes_;
  // Attribution: the parity program and the cycled backup-block erase are
  // parity overhead, not part of whatever write path triggered the flush.
  const nand::CauseScope cause(device_, nand::WriteCause::kParity);

  // Round-robin the parity writes over chips to use channel parallelism.
  const std::uint32_t chips = device_.geometry().num_units();
  std::uint32_t chip = backup_rr_++ % chips;
  SlcCursor* cursor = &backup_[chip];
  if (!cursor->valid) {
    // Keep one free block in reserve for GC relocation destinations.
    Result<std::uint32_t> block = blocks_.allocate(chip, BlockUse::kBackup, /*reserve=*/1);
    if (!block.is_ok()) {
      // No space anywhere for a backup: drop coverage (counted, not silent).
      ++skipped_backups_;
      pending_.clear();
      parity_acc_ = nand::PageData{};
      return now;
    }
    const Status slc = device_.block_mut({chip, block.value()}).set_slc_mode();
    assert(slc.is_ok());
    (void)slc;
    *cursor = SlcCursor{.valid = true, .block = block.value(), .next = 0};
  }

  const nand::PagePos pos{cursor->next, nand::PageType::kLsb};
  const nand::PageAddress addr{chip, cursor->block, pos};
  // The accumulator is reset after the flush anyway, so its payload moves
  // to the device instead of being copied (the reset below reuses the
  // moved-from shell).
  nand::PageData parity = std::move(parity_acc_);
  parity.lpn = kInvalidLpn;  // not user data; never a GC relocation source
  parity.spare |= nand::kNonHostSpareFlag;
  Result<nand::OpTiming> timing = device_.program(addr, std::move(parity), now);
  assert(timing.is_ok());
  ++cursor->next;
  blocks_.add_written({chip, cursor->block});
  ++stats_.backup_pages;

  const Microseconds durable = timing.value().complete;
  for (const nand::PageAddress& covered : pending_) {
    util::recycled_assign(parity_durable_at_, durable_spares_, wl_key(covered),
                          durable);
  }
  pending_.clear();
  parity_acc_ = nand::PageData{};

  if (cursor->next >= device_.geometry().wordlines_per_block) {
    // Backup blocks cycle: once the SLC pages are used up, the parity pages
    // are (almost all) stale — the covered MSB programs have long
    // completed — so the block is erased and returned to the free pool.
    const Result<nand::OpTiming> erased = erase_block({chip, cursor->block}, durable);
    assert(erased.is_ok());
    (void)erased;
    blocks_.release({chip, cursor->block});
    cursor->valid = false;
  }
  return durable;
}

Microseconds ParityFtl::before_program(const nand::PageAddress& addr,
                                       const nand::PageData& data, Microseconds now,
                                       bool gc) {
  if (addr.pos.type == nand::PageType::kLsb) {
    // GC relocation copies need no coverage: their source pages survive
    // until the relocation completes, so an interrupted pass is redone.
    if (gc) return now;
    parity_acc_.xor_with(data);
    pending_.push_back(addr);
    if (pending_.size() >= kLsbPagesPerParity) {
      // The flush runs on another chip's timeline; this LSB program does
      // not wait for it (pre-backup, not write-through).
      flush_parity(now);
    }
    return now;
  }

  // MSB program: the paired LSB page's covering parity must be durable.
  const nand::PageAddress paired{addr.chip, addr.block,
                                 {addr.pos.wordline, nand::PageType::kLsb}};
  const bool uncovered =
      std::find(pending_.begin(), pending_.end(), paired) != pending_.end();
  Microseconds start = now;
  if (uncovered) start = std::max(start, flush_parity(now));
  const auto it = parity_durable_at_.find(wl_key(paired));
  if (it != parity_durable_at_.end()) {
    start = std::max(start, it->second);
    util::recycled_erase(parity_durable_at_, durable_spares_, it);
  }
  return start;
}

void ParityFtl::save_extra(ser::Writer& w) const {
  PageFtl::save_extra(w);
  nand::save(w, parity_acc_);
  w.u64(pending_.size());
  for (const nand::PageAddress& addr : pending_) {
    w.u32(addr.chip);
    w.u32(addr.block);
    w.u32(addr.pos.wordline);
    w.u8(static_cast<std::uint8_t>(addr.pos.type));
  }
  std::vector<std::pair<std::uint64_t, Microseconds>> durable(parity_durable_at_.begin(),
                                                              parity_durable_at_.end());
  std::sort(durable.begin(), durable.end());
  w.u64(durable.size());
  for (const auto& [key, at] : durable) {
    w.u64(key);
    w.i64(at);
  }
  w.u64(backup_.size());
  for (const SlcCursor& c : backup_) {
    w.boolean(c.valid);
    w.u32(c.block);
    w.u32(c.next);
  }
  w.u32(backup_rr_);
  w.u64(partial_flushes_);
  w.u64(skipped_backups_);
}

void ParityFtl::load_extra(ser::Reader& r) {
  PageFtl::load_extra(r);
  nand::load(r, parity_acc_);
  pending_.clear();
  const std::uint64_t pending = r.u64();
  if (pending > r.remaining()) {
    r.fail();
    return;
  }
  pending_.reserve(static_cast<std::size_t>(pending));
  for (std::uint64_t i = 0; i < pending; ++i) {
    nand::PageAddress addr;
    addr.chip = r.u32();
    addr.block = r.u32();
    addr.pos.wordline = r.u32();
    addr.pos.type = static_cast<nand::PageType>(r.u8());
    pending_.push_back(addr);
  }
  parity_durable_at_.clear();
  const std::uint64_t durable = r.u64();
  if (durable > r.remaining()) {
    r.fail();
    return;
  }
  parity_durable_at_.reserve(static_cast<std::size_t>(durable));
  for (std::uint64_t i = 0; i < durable; ++i) {
    const std::uint64_t key = r.u64();
    parity_durable_at_.emplace(key, r.i64());
  }
  if (r.u64() != backup_.size()) {
    r.fail();
    return;
  }
  for (SlcCursor& c : backup_) {
    c.valid = r.boolean();
    c.block = r.u32();
    c.next = r.u32();
  }
  backup_rr_ = r.u32();
  partial_flushes_ = r.u64();
  skipped_backups_ = r.u64();
}

}  // namespace rps::ftl
