#include "src/ftl/parity_ftl.hpp"

#include <algorithm>
#include <cassert>

namespace rps::ftl {

ParityFtl::ParityFtl(const FtlConfig& config)
    : PageFtl(config), backup_(config.geometry.num_units()) {
  // Coverage tracks at most one entry per in-flight LSB word line; sizing
  // the table to the device's block count up front keeps the steady-state
  // write path free of rehashes.
  parity_durable_at_.reserve(config.geometry.num_units() *
                             config.geometry.blocks_per_chip);
}

Microseconds ParityFtl::flush_parity(Microseconds now) {
  if (pending_.empty()) return now;
  if (pending_.size() < kLsbPagesPerParity) ++partial_flushes_;

  // Round-robin the parity writes over chips to use channel parallelism.
  const std::uint32_t chips = device_.geometry().num_units();
  std::uint32_t chip = backup_rr_++ % chips;
  SlcCursor* cursor = &backup_[chip];
  if (!cursor->valid) {
    // Keep one free block in reserve for GC relocation destinations.
    Result<std::uint32_t> block = blocks_.allocate(chip, BlockUse::kBackup, /*reserve=*/1);
    if (!block.is_ok()) {
      // No space anywhere for a backup: drop coverage (counted, not silent).
      ++skipped_backups_;
      pending_.clear();
      parity_acc_ = nand::PageData{};
      return now;
    }
    const Status slc = device_.block_mut({chip, block.value()}).set_slc_mode();
    assert(slc.is_ok());
    (void)slc;
    *cursor = SlcCursor{.valid = true, .block = block.value(), .next = 0};
  }

  const nand::PagePos pos{cursor->next, nand::PageType::kLsb};
  const nand::PageAddress addr{chip, cursor->block, pos};
  // The accumulator is reset after the flush anyway, so its payload moves
  // to the device instead of being copied (the reset below reuses the
  // moved-from shell).
  nand::PageData parity = std::move(parity_acc_);
  parity.lpn = kInvalidLpn;  // not user data; never a GC relocation source
  parity.spare |= nand::kNonHostSpareFlag;
  Result<nand::OpTiming> timing = device_.program(addr, std::move(parity), now);
  assert(timing.is_ok());
  ++cursor->next;
  blocks_.add_written({chip, cursor->block});
  ++stats_.backup_pages;

  const Microseconds durable = timing.value().complete;
  for (const nand::PageAddress& covered : pending_) {
    parity_durable_at_[wl_key(covered)] = durable;
  }
  pending_.clear();
  parity_acc_ = nand::PageData{};

  if (cursor->next >= device_.geometry().wordlines_per_block) {
    // Backup blocks cycle: once the SLC pages are used up, the parity pages
    // are (almost all) stale — the covered MSB programs have long
    // completed — so the block is erased and returned to the free pool.
    const Result<nand::OpTiming> erased = erase_block({chip, cursor->block}, durable);
    assert(erased.is_ok());
    (void)erased;
    blocks_.release({chip, cursor->block});
    cursor->valid = false;
  }
  return durable;
}

Microseconds ParityFtl::before_program(const nand::PageAddress& addr,
                                       const nand::PageData& data, Microseconds now,
                                       bool gc) {
  if (addr.pos.type == nand::PageType::kLsb) {
    // GC relocation copies need no coverage: their source pages survive
    // until the relocation completes, so an interrupted pass is redone.
    if (gc) return now;
    parity_acc_.xor_with(data);
    pending_.push_back(addr);
    if (pending_.size() >= kLsbPagesPerParity) {
      // The flush runs on another chip's timeline; this LSB program does
      // not wait for it (pre-backup, not write-through).
      flush_parity(now);
    }
    return now;
  }

  // MSB program: the paired LSB page's covering parity must be durable.
  const nand::PageAddress paired{addr.chip, addr.block,
                                 {addr.pos.wordline, nand::PageType::kLsb}};
  const bool uncovered =
      std::find(pending_.begin(), pending_.end(), paired) != pending_.end();
  Microseconds start = now;
  if (uncovered) start = std::max(start, flush_parity(now));
  const auto it = parity_durable_at_.find(wl_key(paired));
  if (it != parity_durable_at_.end()) {
    start = std::max(start, it->second);
    parity_durable_at_.erase(it);
  }
  return start;
}

}  // namespace rps::ftl
