#include "src/ftl/slc_ftl.hpp"

#include <cassert>

#include "src/util/serialize.hpp"

namespace rps::ftl {

SlcFtl::SlcFtl(const FtlConfig& config)
    : FtlBase(halved(config), nand::SequenceKind::kFps),
      cursors_(config.geometry.num_units()) {}

Result<Microseconds> SlcFtl::append(std::uint32_t chip, Lpn lpn, nand::PageData data,
                                    Microseconds now, bool gc) {
  Cursor& cursor = cursors_.at(chip);
  const std::uint32_t wordlines = device_.geometry().wordlines_per_block;
  if (!cursor.valid || cursor.next_wordline >= wordlines) {
    // Reentrancy care, as in the other FTLs: foreground GC triggered below
    // may recurse and install a cursor itself.
    if (!gc && blocks_.free_blocks(chip) <= config_.gc_reserve_blocks) {
      const Status freed = ensure_free_block(chip, now);
      if (!freed.is_ok() && !(cursor.valid && cursor.next_wordline < wordlines)) {
        return freed.code();
      }
    }
    if (!cursor.valid || cursor.next_wordline >= wordlines) {
      Result<std::uint32_t> block = blocks_.allocate(
          chip, BlockUse::kActive, gc ? 0 : config_.gc_reserve_blocks);
      if (!block.is_ok()) return block.code();
      const Status slc = device_.block_mut({chip, block.value()}).set_slc_mode();
      assert(slc.is_ok());
      (void)slc;
      cursor = Cursor{.valid = true, .block = block.value(), .next_wordline = 0};
    }
  }

  const nand::PageAddress addr{chip, cursor.block,
                               {cursor.next_wordline, nand::PageType::kLsb}};
  Result<nand::OpTiming> timing = device_.program(addr, std::move(data), now);
  assert(timing.is_ok());
  ++cursor.next_wordline;
  if (cursor.next_wordline >= wordlines) {
    blocks_.set_use({chip, cursor.block}, BlockUse::kFull);
    cursor.valid = false;
  }
  commit_mapping(lpn, addr);
  if (!gc) ++stats_.host_lsb_writes;
  return timing.value().complete;
}

Result<Microseconds> SlcFtl::allocate_host_page(std::uint32_t chip, Lpn lpn,
                                                nand::PageData data, Microseconds now,
                                                double buffer_utilization) {
  (void)buffer_utilization;  // every write is already as fast as possible
  return append(chip, lpn, std::move(data), now, /*gc=*/false);
}

Result<Microseconds> SlcFtl::allocate_gc_page(std::uint32_t chip, Lpn lpn,
                                              nand::PageData data, Microseconds now,
                                              bool background) {
  (void)background;
  return append(chip, lpn, std::move(data), now, /*gc=*/true);
}

void SlcFtl::save_extra(ser::Writer& w) const {
  w.u64(cursors_.size());
  for (const Cursor& c : cursors_) {
    w.boolean(c.valid);
    w.u32(c.block);
    w.u32(c.next_wordline);
  }
}

void SlcFtl::load_extra(ser::Reader& r) {
  if (r.u64() != cursors_.size()) {
    r.fail();
    return;
  }
  for (Cursor& c : cursors_) {
    c.valid = r.boolean();
    c.block = r.u32();
    c.next_wordline = r.u32();
  }
}

}  // namespace rps::ftl
