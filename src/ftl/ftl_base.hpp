// Abstract FTL with the machinery every policy shares: page-level mapping,
// block bookkeeping, greedy foreground/background garbage collection, and
// host read/write entry points with device-time accounting.
//
// Concrete FTLs (pageFTL, parityFTL, rtfFTL, flexFTL, slcFTL) implement
// the ctrl::Allocator interface — the page *allocation policy*: where a
// host write and a GC copy land on a given chip, and what backup work
// surrounds them. Chip selection is NOT the policy's job: the legacy
// write() path picks a chip itself (capacity-aware round robin), while
// the command controller (src/controller/) binds ops to idle chips and
// enters through write_on().
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string_view>

#include "src/controller/allocator.hpp"
#include "src/ftl/block_manager.hpp"
#include "src/ftl/config.hpp"
#include "src/ftl/mapping.hpp"
#include "src/nand/device.hpp"
#include "src/util/counter_fields.hpp"
#include "src/util/result.hpp"
#include "src/util/types.hpp"

namespace rps::obs {
class TraceSink;
}  // namespace rps::obs

namespace rps::ser {
class Writer;
class Reader;
}  // namespace rps::ser

namespace rps::ftl {

/// FTL-level accounting. Fields come from the shared X-macro list
/// (src/util/counter_fields.hpp, where each is documented) so the struct,
/// Registry::delta, serialization and the metrics report can never
/// disagree on the field set.
struct FtlStats {
#define RPS_FIELD(name) std::uint64_t name = 0;
  RPS_FTL_STAT_FIELDS(RPS_FIELD)
#undef RPS_FIELD

  /// Write amplification: NAND programs per host page write.
  [[nodiscard]] double waf(const nand::OpCounters& device) const {
    return host_write_pages == 0
               ? 0.0
               : static_cast<double>(device.programs()) /
                     static_cast<double>(host_write_pages);
  }
};

/// Completion information for one host operation.
struct HostOp {
  Microseconds complete = 0;  // when the data is durable / delivered
};

class FtlBase : public ctrl::Allocator {
 public:
  FtlBase(const FtlConfig& config, nand::SequenceKind kind);
  ~FtlBase() override = default;

  FtlBase(const FtlBase&) = delete;
  FtlBase& operator=(const FtlBase&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Service a one-page host write arriving at `now`.
  /// `buffer_utilization` is the host write buffer's fill level in [0, 1]
  /// (flexFTL's policy input; other FTLs ignore it).
  Result<HostOp> write(Lpn lpn, Microseconds now, double buffer_utilization = 0.0);

  /// Controller entry point: service a one-page host write bound to
  /// `chip` (the scheduler already chose an idle chip). Same accounting
  /// as write(), minus the chip pick. `stream` is the FDP-style placement
  /// hint carried by the command (0 = default stream): it is stamped into
  /// the page's spare word, and stream-aware policies (pageFTL and its
  /// derivatives) give each stream its own active-block cursor.
  Result<HostOp> write_on(std::uint32_t chip, Lpn lpn, Microseconds now,
                          double buffer_utilization = 0.0, std::uint32_t stream = 0);

  /// Service a host write carrying a real payload (recovery tests and the
  /// examples verify data contents end to end).
  Result<HostOp> write_data(Lpn lpn, std::vector<std::uint8_t> bytes, Microseconds now,
                            double buffer_utilization = 0.0);

  /// Service a one-page host read arriving at `now`. Reads of never-written
  /// pages complete immediately (zero-fill). A kEccUncorrectable error means
  /// the stored data was destroyed (power loss without recovery).
  Result<HostOp> read(Lpn lpn, Microseconds now);

  /// Read back a stored payload (verification helper, charges device time).
  /// When `complete` is non-null it receives the delivery time (`now` for
  /// zero-fill reads of unwritten pages).
  Result<nand::PageData> read_data(Lpn lpn, Microseconds now,
                                   Microseconds* complete = nullptr);

  /// Offer the FTL an idle window [now, deadline). Forwards to the
  /// policy's on_idle_plan (the Allocator hook).
  void on_idle(Microseconds now, Microseconds deadline) { on_idle_plan(now, deadline); }

  /// Base idle plan: background GC on chips under the free-block
  /// threshold, plus opt-in wear leveling and read scrubbing. Policies
  /// that bank extra idle work (rtfFTL, flexFTL) override and extend.
  void on_idle_plan(Microseconds now, Microseconds deadline) override;

  /// Striping hook for the command controller: the legacy capacity-aware
  /// round robin restricted to `eligible` chips (nonzero entries, indexed
  /// by chip). With every chip eligible this is exactly pick_chip() —
  /// which is what makes controller placement bit-identical to the legacy
  /// path whenever the whole array is idle.
  std::uint32_t pick_chip_among(const std::vector<std::uint8_t>& eligible);

  /// The unconstrained legacy chip pick (controller's no-striping mode).
  std::uint32_t pick_unconstrained_chip() { return pick_chip(); }

  /// Observe every mapping commit (lpn -> physical page), in program
  /// order. The differential tests use this to compare the controller
  /// path's placement sequence against the legacy path's.
  using PlacementObserver = std::function<void(Lpn, const nand::PageAddress&)>;
  void set_placement_observer(PlacementObserver observer) {
    placement_observer_ = std::move(observer);
  }

  /// TRIM/discard: drop the mapping for `lpn`. The physical page becomes
  /// invalid (reclaimable by GC); subsequent reads are zero-fill. No-op on
  /// unmapped pages. TRIM is volatile: no trim journal is modeled, so
  /// rebuild_mapping() after a reboot may resurrect trimmed data (as on
  /// journal-less real FTLs).
  Status trim(Lpn lpn);

  /// Rebuild the logical-to-physical mapping by scanning the out-of-band
  /// metadata of every valid page on the media — what a real FTL does on
  /// boot after its RAM tables are lost. When several physical copies of
  /// an LPN exist (GC copies, backups not yet erased), the highest
  /// host-write version wins. Replaces the in-memory mapping and the
  /// per-block valid-page accounting.
  void rebuild_mapping();

  /// Attach a trace sink (null = tracing off, the default). Borrowed: the
  /// harness owns the sink and must keep it alive for the FTL's lifetime
  /// or detach with nullptr. Every instrumentation site guards on the
  /// pointer, so the disabled cost is one branch per site.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return trace_; }

  /// State-sampling hooks. Policies with the paper's flexFTL dynamics
  /// override: the LSB quota q (-1 = the policy has no quota notion) and
  /// the total slow-block queue depth across chips (0 likewise).
  [[nodiscard]] virtual std::int64_t observed_lsb_quota() const { return -1; }
  [[nodiscard]] virtual std::uint64_t observed_slow_queue_depth() const { return 0; }

  [[nodiscard]] const FtlStats& stats() const { return stats_; }
  [[nodiscard]] nand::NandDevice& device() { return device_; }
  [[nodiscard]] const nand::NandDevice& device() const { return device_; }
  [[nodiscard]] const FtlConfig& config() const { return config_; }
  [[nodiscard]] const MappingTable& mapping() const { return mapping_; }
  [[nodiscard]] const BlockManager& blocks() const { return blocks_; }
  [[nodiscard]] Lpn exported_pages() const { return mapping_.exported_pages(); }

  /// Debug invariant: every mapped LPN's block accounts it as valid, and
  /// per-block valid counts sum to the mapped count.
  [[nodiscard]] bool check_consistency() const;

  /// Snapshot support: serialize / restore the complete mutable FTL state
  /// (device media + timelines, mapping, block pools, stats, cursors) so a
  /// restored FTL is bit-identical to the one saved — same placements,
  /// same timings, same digests. Policy-specific state (active cursors,
  /// parity accumulators, SBQueues, ...) rides through the save_extra /
  /// load_extra hooks each concrete FTL overrides. Borrowed pointers
  /// (trace sink, placement observer) are not serialized.
  void save_state(ser::Writer& w) const;
  void load_state(ser::Reader& r);

 protected:
  /// Policy-specific snapshot state. The base implementations serialize
  /// nothing; every concrete FTL with mutable members overrides both.
  virtual void save_extra(ser::Writer& w) const;
  virtual void load_extra(ser::Reader& r);

  // The allocation policy itself — ctrl::Allocator's allocate_host_page /
  // allocate_gc_page / on_idle_plan — is what concrete FTLs implement.

  /// Update mapping + valid counters for a page just written to `addr`.
  void commit_mapping(Lpn lpn, const nand::PageAddress& addr);

  /// Relocate valid pages out of `victim` until done, `deadline`, or
  /// `max_copies` pages; erases and frees the block when fully cleaned.
  /// Returns true if the block was freed. With a trace sink attached this
  /// also records the GC migration (and block reclaim) events. All device
  /// ops of the collection are attributed to `cause` (wear leveling and
  /// scrubbing pass their own).
  bool collect_block(std::uint32_t chip, std::uint32_t victim, Microseconds now,
                     Microseconds deadline, bool background,
                     std::uint32_t max_copies = UINT32_MAX,
                     nand::WriteCause cause = nand::WriteCause::kGcCopy);

  /// Amortized foreground GC: a few relocation copies per host write on a
  /// low-free chip. Keeps reclaim incremental — a whole-block relocation in
  /// the write path is a multi-hundred-millisecond stall that a real FTL
  /// never takes at once.
  void incremental_gc(Microseconds now);

  /// Foreground GC: make sure `chip` has more than the reserve free blocks.
  Status ensure_free_block(std::uint32_t chip, Microseconds now);

  /// Erase `addr` through the device's bad-block machinery. A kBlockBad
  /// failure (endurance exceeded, spare pool dry) retires the block in
  /// the BlockManager — capacity attrition — and propagates the error;
  /// every policy's erase must go through here so retirement bookkeeping
  /// never diverges from the device's table.
  Result<nand::OpTiming> erase_block(const nand::BlockAddress& addr, Microseconds now);

  /// Static wear leveling (idle time, opt-in via wear_level_threshold):
  /// migrate the coldest full block on each chip whose wear trails the
  /// chip's hottest block by the configured threshold.
  void static_wear_level(Microseconds now, Microseconds deadline);

  /// Read-disturb scrubbing (idle time, opt-in via read_scrub_threshold):
  /// refresh full blocks whose read count since erase passed the threshold.
  void scrub_read_disturbed(Microseconds now, Microseconds deadline);

  /// Chip selection for host-write striping: the chip with the most free
  /// blocks, ties broken round-robin. Pure round-robin lets the valid-data
  /// share of a chip random-walk into its physical capacity (GC cannot
  /// reclaim a chip that is 100% valid); free-space-aware placement keeps
  /// the chips balanced while still spreading consecutive writes.
  std::uint32_t pick_chip();

  /// Unique content signature for a simulated write.
  std::uint64_t make_signature(Lpn lpn);

  /// The stream hint of the host write currently being allocated (valid
  /// inside allocate_host_page; 0 between writes and for GC copies).
  [[nodiscard]] std::uint32_t current_stream() const { return current_stream_; }

  /// Map a stream hint onto one of the config's write_stream_slots
  /// cursor slots. Stream 0 always maps to slot 0 (the default/GC slot —
  /// what keeps single-stream behavior bit-identical to the
  /// pre-multi-tenant code); nonzero streams share slots 1..slots-1
  /// round-robin, modeling a device with limited placement resources
  /// (NVMe FDP's bounded reclaim-unit handles).
  [[nodiscard]] std::uint32_t stream_slot(std::uint32_t stream) const {
    const std::uint32_t slots = std::max<std::uint32_t>(1, config_.write_stream_slots);
    if (stream == 0 || slots == 1) return 0;
    return 1 + (stream - 1) % (slots - 1);
  }

  [[nodiscard]] static Lpn compute_exported_pages(const FtlConfig& config);

 private:
  /// Shared body of write()/write_on(): builds the page payload (stream
  /// tag in the spare word), consults the allocation policy, and runs the
  /// per-write accounting.
  Result<HostOp> host_program(std::uint32_t chip, Lpn lpn,
                              std::vector<std::uint8_t> bytes, Microseconds now,
                              double buffer_utilization, std::uint32_t stream);

  /// Capacity-aware round robin over chips; `eligible` nullptr = all.
  std::uint32_t pick_chip_impl(const std::vector<std::uint8_t>* eligible);

  /// collect_block minus the tracing wrapper.
  bool collect_block_impl(std::uint32_t chip, std::uint32_t victim, Microseconds now,
                          Microseconds deadline, bool background,
                          std::uint32_t max_copies);

 protected:
  FtlConfig config_;
  nand::NandDevice device_;
  MappingTable mapping_;
  BlockManager blocks_;
  FtlStats stats_;
  std::uint32_t rr_chip_ = 0;
  std::uint32_t bgc_rr_chip_ = 0;
  std::uint32_t igc_rr_chip_ = 0;
  std::uint64_t write_version_ = 0;
  std::uint32_t current_stream_ = 0;  // see current_stream()
  PlacementObserver placement_observer_;
  obs::TraceSink* trace_ = nullptr;  // borrowed; null = tracing off
  /// Scratch for collect_block_impl's multi-plane erase group — a member
  /// so per-collection group building stays off the heap at steady state.
  std::vector<nand::BlockAddress> erase_group_;
};

}  // namespace rps::ftl
