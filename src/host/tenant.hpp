// Tenant model for the multi-queue frontend.
//
// A tenant is one independent open-loop request source: its own arrival
// process, its own disjoint LPN partition, its own QoS parameters
// (arbitration weight, in-flight cap) and its own FDP-style write
// stream. Everything a tenant does is a pure function of
// (TenantConfig, partition, derive_seed(base_seed, id)) — which is what
// makes a multi-tenant run bit-identical at any --jobs value: traces may
// be generated in parallel, but each one depends only on its own seed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/types.hpp"
#include "src/workload/generator.hpp"

namespace rps::host {

struct TenantConfig {
  std::uint32_t id = 0;

  /// Open-loop arrival process (see workload::OpenLoopConfig).
  workload::ArrivalProcess arrival = workload::ArrivalProcess::kPoisson;
  double read_fraction = 0.2;
  double zipf_theta = 0.85;
  workload::SizeDistribution size_dist{{1, 0.6}, {2, 0.3}, {4, 0.1}};
  Microseconds mean_interarrival_us = 500;
  Microseconds on_mean_us = 20'000;   // kBurstyOnOff only
  Microseconds off_mean_us = 100'000; // kBurstyOnOff only
  Microseconds start_us = 0;
  std::uint64_t requests = 1'000;

  /// QoS: arbitration weight (WRR/WDRR) and the NVMe-queue-depth-style
  /// cap on commands admitted but not yet completed.
  std::uint32_t weight = 1;
  std::uint32_t in_flight_cap = 8;

  /// Write-stream / placement hint carried by every command. The default
  /// sentinel resolves to the tenant id, so tenant 0 rides the device's
  /// default stream (slot 0) — which is what makes the N=1 frontend
  /// bit-identical to the single-stream path.
  static constexpr std::uint32_t kStreamFromId = 0xffffffffu;
  std::uint32_t stream = kStreamFromId;

  [[nodiscard]] std::uint32_t effective_stream() const {
    return stream == kStreamFromId ? id : stream;
  }
};

/// A tenant's disjoint slice of the exported LPN space.
struct LpnPartition {
  Lpn first = 0;
  Lpn pages = 0;
};

/// Partition `exported_pages` evenly across `tenants`; the remainder goes
/// to the last tenant. Partitions tile the space: tenant_of_lpn below is
/// its exact inverse.
[[nodiscard]] LpnPartition tenant_partition(std::uint32_t id, std::uint32_t tenants,
                                            Lpn exported_pages);

/// Which tenant's partition `lpn` falls in (the faultsim stream audit
/// uses this to derive the expected stream tag of every mapped LPN).
[[nodiscard]] std::uint32_t tenant_of_lpn(Lpn lpn, std::uint32_t tenants,
                                          Lpn exported_pages);

/// The tenant's open-loop trace over its partition, seeded with
/// derive_seed(base_seed, config.id).
[[nodiscard]] workload::Trace tenant_trace(const TenantConfig& config,
                                           const LpnPartition& partition,
                                           std::uint64_t base_seed);

/// All tenants' traces, generated `jobs`-wide (parallel_for_indexed with
/// slot-per-index merge: bit-identical to sequential for any jobs).
[[nodiscard]] std::vector<workload::Trace> build_tenant_traces(
    const std::vector<TenantConfig>& tenants, Lpn exported_pages,
    std::uint64_t base_seed, std::uint32_t jobs = 1);

}  // namespace rps::host
