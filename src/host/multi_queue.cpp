#include "src/host/multi_queue.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rps::host {

namespace {

/// FNV-1a, the digest primitive (stable across platforms and runs).
void fnv_mix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
}

}  // namespace

std::uint64_t MultiQueueResult::digest() const {
  std::uint64_t h = 1469598103934665603ull;
  std::ostringstream os;
  os << end_time_us << '|' << idle_windows << '|' << crashed;
  for (const TenantResult& t : tenants) {
    os << '|' << t.id << ',' << t.submitted << ',' << t.completed << ','
       << t.aborted << ',' << t.failed << ',' << t.read_requests << ','
       << t.write_requests << ',' << t.pages << ',' << t.read_errors << ','
       << t.last_complete_us << ',' << t.latency_us.to_json() << ','
       << t.write_latency_us.to_json();
  }
  fnv_mix(h, os.str());
  return h;
}

MultiQueueFrontend::MultiQueueFrontend(ftl::FtlBase& ftl, MultiQueueConfig config)
    : ftl_(ftl), config_(std::move(config)) {
  controller_ = std::make_unique<ctrl::Controller>(
      ftl_, ctrl::ControllerConfig{.stripe_writes = config_.stripe_writes,
                                   .keep_op_log = config_.keep_op_log});
}

void MultiQueueFrontend::add_tenant(const TenantConfig& config,
                                    workload::Trace trace) {
  assert(config.id == queues_.size());  // ids must be dense, in order
  assert(trace.is_sorted());
  Queue q;
  q.config = config;
  q.trace = std::move(trace);
  q.result.id = config.id;
  if (!q.trace.requests().empty()) {
    arrivals_.push(Arrival{q.trace.requests().front().arrival_us, config.id, 0});
  }
  queues_.push_back(std::move(q));
}

void MultiQueueFrontend::attach_tenant_sampler(std::uint32_t tenant,
                                               obs::StateSampler* sampler) {
  Queue& q = queues_.at(tenant);
  q.sampler = sampler;
  if (sampler == nullptr) return;
  sampler->set_collector([this, tenant](obs::StateSample& sample) {
    const Queue& queue = queues_[tenant];
    const auto& reqs = queue.trace.requests();
    sample.q = -1;
    sample.sbqueue = queue.in_flight;
    // Backlog: arrived by the current instant, not yet admitted.
    const auto begin = reqs.begin() + static_cast<std::ptrdiff_t>(queue.next);
    const auto it = std::upper_bound(
        begin, reqs.end(), cur_time_,
        [](Microseconds t, const workload::IoRequest& r) { return t < r.arrival_us; });
    sample.queued_write_ops = static_cast<std::uint64_t>(it - begin);
    // Progress through the tenant's trace, repurposing the free-fraction
    // column of the shared sample schema.
    sample.free_fraction =
        reqs.empty() ? 1.0
                     : static_cast<double>(queue.next) / static_cast<double>(reqs.size());
  });
}

void MultiQueueFrontend::set_observability(obs::TraceSink* sink,
                                           obs::StateSampler* sampler) {
  controller_->set_observability(sink, sampler);
}

Microseconds MultiQueueFrontend::next_arrival() {
  // A head whose arrival already passed is cap- or budget-blocked (the
  // admission loop admits every other kind on the spot): its next chance
  // comes from a completion, not from the arrival clock — and since
  // cur_time_ is monotone such an entry can never drive the clock again,
  // so it pops for good. Its tenant's eligibility was already recomputed
  // when the head arrived (process_instant's release loop, or the
  // admission that created it mid-instant), so dropping the entry loses
  // nothing. Before the first instant runs nothing was ever admitted, so
  // that reasoning does not apply yet — an arrival at exactly cur_time_
  // (a trace that starts at t = 0) must still open the loop.
  while (!arrivals_.empty()) {
    const Arrival a = arrivals_.top();
    if (a.seq != queues_[a.tenant].next) {
      arrivals_.pop();  // stale: that head was admitted
      continue;
    }
    if (started_ && a.at <= cur_time_) {
      arrivals_.pop();  // blocked head: completions drive it now
      continue;
    }
    return a.at;
  }
  return kTimeNever;
}

double MultiQueueFrontend::buffer_utilization() const {
  const std::uint32_t cap = ftl_.config().write_buffer_pages;
  if (cap == 0) return 0.0;
  return std::min(1.0, static_cast<double>(in_flight_write_pages_) /
                           static_cast<double>(cap));
}

void MultiQueueFrontend::harvest(Microseconds /*t*/) {
  for (const ctrl::CommandResult& res : controller_->take_all_results()) {
    const auto it = pending_.find(res.id);
    assert(it != pending_.end());
    const Pending p = it->second;
    pending_.erase(it);
    Queue& q = queues_[p.tenant];
    if (res.aborted) {
      // Torn off by a power loss: never acknowledged, no completion will
      // ever release its slot — release it here.
      ++q.result.aborted;
      assert(q.in_flight > 0);
      --q.in_flight;
      in_flight_pages_ -= p.pages;
      if (p.write) in_flight_write_pages_ -= p.pages;
      continue;
    }
    const Microseconds done = res.last_complete;
    ++q.result.completed;
    if (!res.ok) ++q.result.failed;
    q.result.read_errors += res.read_errors;
    const auto latency =
        static_cast<std::uint64_t>(done > p.arrival ? done - p.arrival : 0);
    q.result.latency_us.add(latency);
    if (p.write) q.result.write_latency_us.add(latency);
    q.result.last_complete_us = std::max(q.result.last_complete_us, done);
    last_completion_ = std::max(last_completion_, done);
    completions_.push(
        Completion{done, p.tenant, p.pages, p.write ? p.pages : 0});
  }
}

bool MultiQueueFrontend::budget_fits(std::uint32_t pages) const {
  if (config_.shared_page_budget == 0) return true;
  if (in_flight_pages_ + pages <= config_.shared_page_budget) return true;
  // Oversized command: admit alone rather than deadlock.
  return in_flight_pages_ == 0 && pages > config_.shared_page_budget;
}

void MultiQueueFrontend::recompute_eligibility(std::uint32_t i) {
  const Queue& q = queues_[i];
  const bool ready = q.next < q.trace.size() &&
                     q.trace.requests()[q.next].arrival_us <= cur_time_ &&
                     q.in_flight < q.config.in_flight_cap;
  const std::uint32_t pages = ready ? q.trace.requests()[q.next].page_count : 0;
  const bool ok = ready && budget_fits(pages);
  if (config_.shared_page_budget != 0) {
    if (ready && !ok) {
      budget_blocked_.set(i);
    } else {
      budget_blocked_.clear(i);
    }
  }
  if (ok) {
    admissible_.set(i);
  } else {
    admissible_.clear(i);
  }
  arbiter_->set_eligible(i, ok, ok ? pages : 0);
}

void MultiQueueFrontend::on_budget_grabbed() {
  // A shrinking budget can only evict: rescan the currently-admissible
  // set (this also catches an oversized head that was eligible solely
  // because nothing was in flight). Snapshot first — recompute mutates
  // the set under iteration.
  if (config_.shared_page_budget == 0) return;
  rescan_scratch_.clear();
  admissible_.for_each([&](std::uint32_t i) { rescan_scratch_.push_back(i); });
  for (const std::uint32_t i : rescan_scratch_) recompute_eligibility(i);
}

void MultiQueueFrontend::on_budget_released() {
  // A growing budget can only promote: rescan the budget-blocked set.
  if (config_.shared_page_budget == 0) return;
  rescan_scratch_.clear();
  budget_blocked_.for_each([&](std::uint32_t i) { rescan_scratch_.push_back(i); });
  for (const std::uint32_t i : rescan_scratch_) recompute_eligibility(i);
}

void MultiQueueFrontend::process_instant(Microseconds t) {
  cur_time_ = t;
  started_ = true;
  // Heads arriving by this instant join the admissible set. Each entry
  // releases once; later heads of the same tenant push fresh entries on
  // admission. Stale entries (head already admitted) drop silently.
  while (!arrivals_.empty() && arrivals_.top().at <= t) {
    const Arrival a = arrivals_.top();
    arrivals_.pop();
    if (a.seq == queues_[a.tenant].next) recompute_eligibility(a.tenant);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    // Completions due by now release their tenant's in-flight slot (and
    // their share of the write buffer).
    while (!completions_.empty() && completions_.top().at <= t) {
      const Completion c = completions_.top();
      completions_.pop();
      Queue& q = queues_[c.tenant];
      assert(q.in_flight > 0);
      --q.in_flight;
      assert(in_flight_pages_ >= c.pages);
      in_flight_pages_ -= c.pages;
      assert(in_flight_write_pages_ >= c.write_pages);
      in_flight_write_pages_ -= c.write_pages;
      recompute_eligibility(c.tenant);
      on_budget_released();
      progress = true;
    }
    // Arbitration: the arbiter holds the eligibility pushed above and
    // admits in O(active) until it runs dry.
    while (const std::optional<std::uint32_t> pick = arbiter_->admit()) {
      Queue& q = queues_[*pick];
      const workload::IoRequest& r = q.trace.requests()[q.next];
      const bool write = r.kind == workload::IoKind::kWrite;
      ctrl::HostCommand cmd;
      cmd.kind = write ? ctrl::CmdKind::kWrite : ctrl::CmdKind::kRead;
      cmd.lpn = r.lpn;
      cmd.page_count = r.page_count;
      cmd.issue = t;
      cmd.stream = q.config.effective_stream();
      in_flight_pages_ += r.page_count;
      if (write) in_flight_write_pages_ += r.page_count;
      cmd.buffer_utilization = buffer_utilization();
      const ctrl::CommandId id = controller_->submit(cmd);
      pending_.emplace(id, Pending{*pick, r.arrival_us, r.page_count, write});
      if (config_.keep_admission_log) {
        admission_log_.push_back(AdmissionRecord{*pick, q.next, r.arrival_us, t,
                                                 id, r.page_count, write});
      }
      ++q.next;
      ++q.in_flight;
      ++q.result.submitted;
      q.result.pages += r.page_count;
      if (write) {
        ++q.result.write_requests;
      } else {
        ++q.result.read_requests;
      }
      // The tenant's next head (if it already arrived) re-arms its
      // eligibility here; a future head goes through the arrival heap.
      if (q.next < q.trace.size()) {
        arrivals_.push(
            Arrival{q.trace.requests()[q.next].arrival_us, *pick, q.next});
      }
      recompute_eligibility(*pick);
      // The admission grabbed budget pages, which can evict other
      // eligible heads.
      on_budget_grabbed();
      progress = true;
    }
    controller_->drain(t);
    const std::size_t before = pending_.size();
    harvest(t);
    if (pending_.size() != before) progress = true;
  }
  tick_samplers(t);
}

void MultiQueueFrontend::tick_samplers(Microseconds t) {
  for (Queue& q : queues_) {
    if (q.sampler == nullptr) continue;
    q.sampler->set_utilization(
        q.config.in_flight_cap == 0
            ? 0.0
            : static_cast<double>(q.in_flight) /
                  static_cast<double>(q.config.in_flight_cap));
    q.sampler->tick(t);
  }
}

MultiQueueResult MultiQueueFrontend::run(Microseconds crash_time_us) {
  assert(!queues_.empty());
  const auto n = static_cast<std::uint32_t>(queues_.size());
  ctrl::ArbiterConfig arb = config_.arbiter;
  if (arb.weights.empty()) {
    arb.weights.reserve(n);
    for (const Queue& q : queues_) arb.weights.push_back(q.config.weight);
  }
  arbiter_ = std::make_unique<ctrl::QueueArbiter>(n, arb);
  admissible_.resize(n);
  budget_blocked_.resize(n);
  rescan_scratch_.reserve(n);

  while (true) {
    const Microseconds na = next_arrival();
    Microseconds nc = completions_.empty() ? kTimeNever : completions_.top().at;
    if (nc == kTimeNever && !pending_.empty()) {
      // Commands in flight but no known completion: their ops wait on
      // controller-internal wake-ups (busy chips). Run the controller
      // forward to the next external decision point and harvest.
      controller_->drain(std::min(na, crash_time_us));
      harvest(cur_time_);
      nc = completions_.empty() ? kTimeNever : completions_.top().at;
      if (nc == kTimeNever && na == kTimeNever) break;  // crash-capped tail
    }
    const Microseconds t = std::min(na, nc);
    if (t == kTimeNever) break;
    if (t >= crash_time_us) break;  // nothing at or after the cut happens
    if (t == na && completions_.empty() && pending_.empty() &&
        t > last_completion_ + config_.idle_threshold_us) {
      // Same semantics as sim::Simulator's idle-window detection: the
      // device has drained and the next arrival leaves a real gap.
      ftl_.on_idle(last_completion_, t);
      ++idle_windows_;
    }
    process_instant(t);
  }

  MultiQueueResult result;
  result.crashed = crash_time_us != kTimeNever;
  result.idle_windows = idle_windows_;
  result.end_time_us = last_completion_;
  result.tenants.reserve(n);
  for (const Queue& q : queues_) result.tenants.push_back(q.result);
  return result;
}

ctrl::PowerLossOutcome MultiQueueFrontend::power_loss(Microseconds t,
                                                      MultiQueueResult& result) {
  const ctrl::PowerLossOutcome outcome = controller_->power_loss(t);
  harvest(t);  // aborted commands surface as finished results
  for (std::uint32_t i = 0; i < num_tenants(); ++i) result.tenants[i] = queues_[i].result;
  result.end_time_us = std::max(result.end_time_us, last_completion_);
  return outcome;
}

}  // namespace rps::host
