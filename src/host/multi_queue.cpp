#include "src/host/multi_queue.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rps::host {

namespace {

/// FNV-1a, the digest primitive (stable across platforms and runs).
void fnv_mix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
}

}  // namespace

std::uint64_t MultiQueueResult::digest() const {
  std::uint64_t h = 1469598103934665603ull;
  std::ostringstream os;
  os << end_time_us << '|' << idle_windows << '|' << crashed;
  for (const TenantResult& t : tenants) {
    os << '|' << t.id << ',' << t.submitted << ',' << t.completed << ','
       << t.aborted << ',' << t.failed << ',' << t.read_requests << ','
       << t.write_requests << ',' << t.pages << ',' << t.read_errors << ','
       << t.last_complete_us << ',' << t.latency_us.to_json() << ','
       << t.write_latency_us.to_json();
  }
  fnv_mix(h, os.str());
  return h;
}

MultiQueueFrontend::MultiQueueFrontend(ftl::FtlBase& ftl, MultiQueueConfig config)
    : ftl_(ftl), config_(std::move(config)) {
  controller_ = std::make_unique<ctrl::Controller>(
      ftl_, ctrl::ControllerConfig{.stripe_writes = config_.stripe_writes,
                                   .keep_op_log = config_.keep_op_log});
}

void MultiQueueFrontend::add_tenant(const TenantConfig& config,
                                    workload::Trace trace) {
  assert(config.id == queues_.size());  // ids must be dense, in order
  assert(trace.is_sorted());
  Queue q;
  q.config = config;
  q.trace = std::move(trace);
  q.result.id = config.id;
  queues_.push_back(std::move(q));
}

void MultiQueueFrontend::attach_tenant_sampler(std::uint32_t tenant,
                                               obs::StateSampler* sampler) {
  Queue& q = queues_.at(tenant);
  q.sampler = sampler;
  if (sampler == nullptr) return;
  sampler->set_collector([this, tenant](obs::StateSample& sample) {
    const Queue& queue = queues_[tenant];
    const auto& reqs = queue.trace.requests();
    sample.q = -1;
    sample.sbqueue = queue.in_flight;
    // Backlog: arrived by the current instant, not yet admitted.
    const auto begin = reqs.begin() + static_cast<std::ptrdiff_t>(queue.next);
    const auto it = std::upper_bound(
        begin, reqs.end(), cur_time_,
        [](Microseconds t, const workload::IoRequest& r) { return t < r.arrival_us; });
    sample.queued_write_ops = static_cast<std::uint64_t>(it - begin);
    // Progress through the tenant's trace, repurposing the free-fraction
    // column of the shared sample schema.
    sample.free_fraction =
        reqs.empty() ? 1.0
                     : static_cast<double>(queue.next) / static_cast<double>(reqs.size());
  });
}

void MultiQueueFrontend::set_observability(obs::TraceSink* sink,
                                           obs::StateSampler* sampler) {
  controller_->set_observability(sink, sampler);
}

Microseconds MultiQueueFrontend::next_arrival() const {
  // A head whose arrival already passed is cap-blocked (the admission
  // loop admits every other kind on the spot): its next chance comes from
  // a completion, not from the arrival clock — skip it here, or the event
  // loop would spin on an instant it cannot make progress at. Before the
  // first instant runs nothing was ever admitted, so that reasoning does
  // not apply yet — an arrival at exactly cur_time_ (a trace that starts
  // at t = 0) must still open the loop.
  Microseconds next = kTimeNever;
  for (const Queue& q : queues_) {
    if (q.next >= q.trace.size()) continue;
    const Microseconds arrival = q.trace.requests()[q.next].arrival_us;
    if (arrival > cur_time_ || !started_) next = std::min(next, arrival);
  }
  return next;
}

double MultiQueueFrontend::buffer_utilization() const {
  const std::uint32_t cap = ftl_.config().write_buffer_pages;
  if (cap == 0) return 0.0;
  return std::min(1.0, static_cast<double>(in_flight_write_pages_) /
                           static_cast<double>(cap));
}

void MultiQueueFrontend::harvest(Microseconds /*t*/) {
  for (const ctrl::CommandResult& res : controller_->take_all_results()) {
    const auto it = pending_.find(res.id);
    assert(it != pending_.end());
    const Pending p = it->second;
    pending_.erase(it);
    Queue& q = queues_[p.tenant];
    if (res.aborted) {
      // Torn off by a power loss: never acknowledged, no completion will
      // ever release its slot — release it here.
      ++q.result.aborted;
      assert(q.in_flight > 0);
      --q.in_flight;
      in_flight_pages_ -= p.pages;
      if (p.write) in_flight_write_pages_ -= p.pages;
      continue;
    }
    const Microseconds done = res.last_complete;
    ++q.result.completed;
    if (!res.ok) ++q.result.failed;
    q.result.read_errors += res.read_errors;
    const auto latency =
        static_cast<std::uint64_t>(done > p.arrival ? done - p.arrival : 0);
    q.result.latency_us.add(latency);
    if (p.write) q.result.write_latency_us.add(latency);
    q.result.last_complete_us = std::max(q.result.last_complete_us, done);
    last_completion_ = std::max(last_completion_, done);
    completions_.push(
        Completion{done, p.tenant, p.pages, p.write ? p.pages : 0});
  }
}

void MultiQueueFrontend::process_instant(Microseconds t) {
  cur_time_ = t;
  started_ = true;
  const std::uint32_t n = num_tenants();
  const auto budget_fits = [&](std::uint32_t pages) {
    if (config_.shared_page_budget == 0) return true;
    if (in_flight_pages_ + pages <= config_.shared_page_budget) return true;
    // Oversized command: admit alone rather than deadlock.
    return in_flight_pages_ == 0 && pages > config_.shared_page_budget;
  };
  const auto refresh = [&](std::uint32_t i) {
    const Queue& q = queues_[i];
    const bool ok = q.next < q.trace.size() &&
                    q.trace.requests()[q.next].arrival_us <= t &&
                    q.in_flight < q.config.in_flight_cap &&
                    budget_fits(q.trace.requests()[q.next].page_count);
    eligible_[i] = ok ? 1 : 0;
    head_cost_[i] = ok ? q.trace.requests()[q.next].page_count : 0;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    // Completions due by now release their tenant's in-flight slot (and
    // their share of the write buffer).
    while (!completions_.empty() && completions_.top().at <= t) {
      const Completion c = completions_.top();
      completions_.pop();
      Queue& q = queues_[c.tenant];
      assert(q.in_flight > 0);
      --q.in_flight;
      assert(in_flight_pages_ >= c.pages);
      in_flight_pages_ -= c.pages;
      assert(in_flight_write_pages_ >= c.write_pages);
      in_flight_write_pages_ -= c.write_pages;
      progress = true;
    }
    // Arbitration: hand the arbiter the eligible heads until it runs dry.
    for (std::uint32_t i = 0; i < n; ++i) refresh(i);
    while (const std::optional<std::uint32_t> pick =
               arbiter_->admit(eligible_, head_cost_)) {
      Queue& q = queues_[*pick];
      const workload::IoRequest& r = q.trace.requests()[q.next];
      const bool write = r.kind == workload::IoKind::kWrite;
      ctrl::HostCommand cmd;
      cmd.kind = write ? ctrl::CmdKind::kWrite : ctrl::CmdKind::kRead;
      cmd.lpn = r.lpn;
      cmd.page_count = r.page_count;
      cmd.issue = t;
      cmd.stream = q.config.effective_stream();
      in_flight_pages_ += r.page_count;
      if (write) in_flight_write_pages_ += r.page_count;
      cmd.buffer_utilization = buffer_utilization();
      const ctrl::CommandId id = controller_->submit(cmd);
      pending_.emplace(id, Pending{*pick, r.arrival_us, r.page_count, write});
      if (config_.keep_admission_log) {
        admission_log_.push_back(AdmissionRecord{*pick, q.next, r.arrival_us, t,
                                                 id, r.page_count, write});
      }
      ++q.next;
      ++q.in_flight;
      ++q.result.submitted;
      q.result.pages += r.page_count;
      if (write) {
        ++q.result.write_requests;
      } else {
        ++q.result.read_requests;
      }
      // An admission changes the shared budget, which can flip any
      // queue's eligibility — refresh them all.
      for (std::uint32_t i = 0; i < n; ++i) refresh(i);
      progress = true;
    }
    controller_->drain(t);
    const std::size_t before = pending_.size();
    harvest(t);
    if (pending_.size() != before) progress = true;
  }
  tick_samplers(t);
}

void MultiQueueFrontend::tick_samplers(Microseconds t) {
  for (Queue& q : queues_) {
    if (q.sampler == nullptr) continue;
    q.sampler->set_utilization(
        q.config.in_flight_cap == 0
            ? 0.0
            : static_cast<double>(q.in_flight) /
                  static_cast<double>(q.config.in_flight_cap));
    q.sampler->tick(t);
  }
}

MultiQueueResult MultiQueueFrontend::run(Microseconds crash_time_us) {
  assert(!queues_.empty());
  const auto n = static_cast<std::uint32_t>(queues_.size());
  ctrl::ArbiterConfig arb = config_.arbiter;
  if (arb.weights.empty()) {
    arb.weights.reserve(n);
    for (const Queue& q : queues_) arb.weights.push_back(q.config.weight);
  }
  arbiter_ = std::make_unique<ctrl::QueueArbiter>(n, arb);
  eligible_.assign(n, 0);
  head_cost_.assign(n, 0);

  while (true) {
    const Microseconds na = next_arrival();
    Microseconds nc = completions_.empty() ? kTimeNever : completions_.top().at;
    if (nc == kTimeNever && !pending_.empty()) {
      // Commands in flight but no known completion: their ops wait on
      // controller-internal wake-ups (busy chips). Run the controller
      // forward to the next external decision point and harvest.
      controller_->drain(std::min(na, crash_time_us));
      harvest(cur_time_);
      nc = completions_.empty() ? kTimeNever : completions_.top().at;
      if (nc == kTimeNever && na == kTimeNever) break;  // crash-capped tail
    }
    const Microseconds t = std::min(na, nc);
    if (t == kTimeNever) break;
    if (t >= crash_time_us) break;  // nothing at or after the cut happens
    if (t == na && completions_.empty() && pending_.empty() &&
        t > last_completion_ + config_.idle_threshold_us) {
      // Same semantics as sim::Simulator's idle-window detection: the
      // device has drained and the next arrival leaves a real gap.
      ftl_.on_idle(last_completion_, t);
      ++idle_windows_;
    }
    process_instant(t);
  }

  MultiQueueResult result;
  result.crashed = crash_time_us != kTimeNever;
  result.idle_windows = idle_windows_;
  result.end_time_us = last_completion_;
  result.tenants.reserve(n);
  for (const Queue& q : queues_) result.tenants.push_back(q.result);
  return result;
}

ctrl::PowerLossOutcome MultiQueueFrontend::power_loss(Microseconds t,
                                                      MultiQueueResult& result) {
  const ctrl::PowerLossOutcome outcome = controller_->power_loss(t);
  harvest(t);  // aborted commands surface as finished results
  for (std::uint32_t i = 0; i < num_tenants(); ++i) result.tenants[i] = queues_[i].result;
  result.end_time_us = std::max(result.end_time_us, last_completion_);
  return outcome;
}

}  // namespace rps::host
