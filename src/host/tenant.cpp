#include "src/host/tenant.hpp"

#include <cassert>

#include "src/util/parallel.hpp"

namespace rps::host {

LpnPartition tenant_partition(std::uint32_t id, std::uint32_t tenants,
                              Lpn exported_pages) {
  assert(tenants > 0 && id < tenants);
  const Lpn span = exported_pages / tenants;
  LpnPartition p;
  p.first = static_cast<Lpn>(id) * span;
  p.pages = id + 1 == tenants ? exported_pages - p.first : span;
  return p;
}

std::uint32_t tenant_of_lpn(Lpn lpn, std::uint32_t tenants, Lpn exported_pages) {
  assert(tenants > 0 && lpn < exported_pages);
  const Lpn span = exported_pages / tenants;
  if (span == 0) return tenants - 1;
  const Lpn idx = lpn / span;
  return static_cast<std::uint32_t>(idx >= tenants ? tenants - 1 : idx);
}

workload::Trace tenant_trace(const TenantConfig& config, const LpnPartition& partition,
                             std::uint64_t base_seed) {
  assert(partition.pages > 0);
  workload::OpenLoopConfig ol;
  ol.name = "tenant-" + std::to_string(config.id);
  ol.arrival = config.arrival;
  ol.read_fraction = config.read_fraction;
  ol.first_lpn = partition.first;
  ol.working_set_pages = partition.pages;
  ol.zipf_theta = config.zipf_theta;
  ol.size_dist = config.size_dist;
  ol.mean_interarrival_us = config.mean_interarrival_us;
  ol.on_mean_us = config.on_mean_us;
  ol.off_mean_us = config.off_mean_us;
  ol.start_us = config.start_us;
  ol.total_requests = config.requests;
  ol.seed = util::derive_seed(base_seed, config.id);
  return workload::generate_open_loop(ol);
}

std::vector<workload::Trace> build_tenant_traces(
    const std::vector<TenantConfig>& tenants, Lpn exported_pages,
    std::uint64_t base_seed, std::uint32_t jobs) {
  std::vector<workload::Trace> traces(tenants.size());
  util::parallel_for_indexed(tenants.size(), jobs, [&](std::size_t i) {
    const LpnPartition partition = tenant_partition(
        tenants[i].id, static_cast<std::uint32_t>(tenants.size()), exported_pages);
    traces[i] = tenant_trace(tenants[i], partition, base_seed);
  });
  return traces;
}

}  // namespace rps::host
