#include "src/host/block_device.hpp"

#include <algorithm>
#include <cassert>

namespace rps::host {

BlockDevice::BlockDevice(ftl::FtlBase& ftl, const BlockDeviceConfig& config)
    : ftl_(ftl), config_(config) {
  const std::uint32_t page_bytes = ftl.config().geometry.page_size_bytes;
  assert(config_.sector_bytes > 0);
  assert(page_bytes % config_.sector_bytes == 0);
  sectors_per_page_ = page_bytes / config_.sector_bytes;
}

std::vector<std::uint8_t> BlockDevice::page_bytes(Lpn lpn, Microseconds now,
                                                  Microseconds* complete) {
  const std::uint32_t size = ftl_.config().geometry.page_size_bytes;
  Microseconds read_done = now;
  Result<nand::PageData> data = ftl_.read_data(lpn, now, &read_done);
  *complete = std::max(*complete, read_done);
  if (!data.is_ok()) {
    return std::vector<std::uint8_t>(size, 0);  // zero-fill
  }
  std::vector<std::uint8_t> bytes = std::move(data.value().bytes);
  bytes.resize(size, 0);
  return bytes;
}

Result<Microseconds> BlockDevice::write(std::uint64_t sector,
                                        const std::vector<std::uint8_t>& data,
                                        Microseconds now, double buffer_utilization) {
  if (data.empty() || data.size() % config_.sector_bytes != 0) {
    return ErrorCode::kInvalidArgument;
  }
  const std::uint64_t sectors = data.size() / config_.sector_bytes;
  if (sector + sectors > num_sectors()) return ErrorCode::kOutOfRange;
  ++stats_.write_requests;
  stats_.sectors_written += sectors;

  const std::uint32_t page_size = ftl_.config().geometry.page_size_bytes;
  Microseconds complete = now;
  std::uint64_t cursor = sector;            // current absolute sector
  std::size_t consumed = 0;                 // bytes of `data` consumed
  const std::uint64_t end = sector + sectors;
  while (cursor < end) {
    const Lpn lpn = cursor / sectors_per_page_;
    const std::uint32_t first_in_page =
        static_cast<std::uint32_t>(cursor % sectors_per_page_);
    const std::uint32_t span = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(sectors_per_page_ - first_in_page, end - cursor));

    std::vector<std::uint8_t> page;
    if (first_in_page == 0 && span == sectors_per_page_) {
      // Full-page write: no read-modify-write needed.
      page.assign(data.begin() + static_cast<std::ptrdiff_t>(consumed),
                  data.begin() + static_cast<std::ptrdiff_t>(consumed) +
                      page_size);
    } else {
      // Partial page: merge with the current contents.
      ++stats_.rmw_cycles;
      page = page_bytes(lpn, now, &complete);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(consumed),
                  static_cast<std::size_t>(span) * config_.sector_bytes,
                  page.begin() + static_cast<std::ptrdiff_t>(first_in_page) *
                                     config_.sector_bytes);
    }
    const Result<ftl::HostOp> op =
        ftl_.write_data(lpn, std::move(page), now, buffer_utilization);
    if (!op.is_ok()) return op.code();
    complete = std::max(complete, op.value().complete);
    cursor += span;
    consumed += static_cast<std::size_t>(span) * config_.sector_bytes;
  }
  return complete;
}

Result<BlockDevice::ReadResult> BlockDevice::read(std::uint64_t sector,
                                                  std::uint64_t sectors,
                                                  Microseconds now) {
  if (sectors == 0) return ErrorCode::kInvalidArgument;
  if (sector + sectors > num_sectors()) return ErrorCode::kOutOfRange;
  ++stats_.read_requests;
  stats_.sectors_read += sectors;

  ReadResult result;
  result.complete = now;
  result.data.reserve(sectors * config_.sector_bytes);
  std::uint64_t cursor = sector;
  const std::uint64_t end = sector + sectors;
  while (cursor < end) {
    const Lpn lpn = cursor / sectors_per_page_;
    const std::uint32_t first_in_page =
        static_cast<std::uint32_t>(cursor % sectors_per_page_);
    const std::uint32_t span = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(sectors_per_page_ - first_in_page, end - cursor));
    const std::vector<std::uint8_t> page = page_bytes(lpn, now, &result.complete);
    const auto offset = static_cast<std::ptrdiff_t>(first_in_page) *
                        config_.sector_bytes;
    result.data.insert(result.data.end(), page.begin() + offset,
                       page.begin() + offset +
                           static_cast<std::ptrdiff_t>(span) * config_.sector_bytes);
    cursor += span;
  }
  return result;
}

Status BlockDevice::trim(std::uint64_t sector, std::uint64_t sectors) {
  if (sector + sectors > num_sectors()) return Status{ErrorCode::kOutOfRange};
  // Only whole pages can be discarded.
  const std::uint64_t first_full = (sector + sectors_per_page_ - 1) / sectors_per_page_;
  const std::uint64_t end_full = (sector + sectors) / sectors_per_page_;
  for (std::uint64_t lpn = first_full; lpn < end_full; ++lpn) {
    const Status status = ftl_.trim(lpn);
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

}  // namespace rps::host
