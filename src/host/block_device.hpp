// Host-facing block-device layer.
//
// The FTLs expose a page-granular (4 KB) address space; real hosts issue
// sector-granular I/O (512 B or 4 KB logical sectors) of arbitrary length
// and alignment. This adapter provides that interface on top of any FTL:
// sector addressing, multi-page requests, and read-modify-write for
// partial-page writes — the glue a downstream user needs to mount a
// filesystem-shaped workload on the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/ftl/ftl_base.hpp"

namespace rps::host {

struct BlockDeviceConfig {
  std::uint32_t sector_bytes = 512;
};

/// Byte-addressable view statistics.
struct BlockDeviceStats {
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t sectors_read = 0;
  std::uint64_t sectors_written = 0;
  std::uint64_t rmw_cycles = 0;  // partial-page writes needing read-modify-write
};

class BlockDevice {
 public:
  BlockDevice(ftl::FtlBase& ftl, const BlockDeviceConfig& config = {});

  [[nodiscard]] std::uint32_t sector_bytes() const { return config_.sector_bytes; }
  [[nodiscard]] std::uint32_t sectors_per_page() const { return sectors_per_page_; }
  [[nodiscard]] std::uint64_t num_sectors() const {
    return ftl_.exported_pages() * sectors_per_page_;
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return num_sectors() * config_.sector_bytes;
  }

  /// Write `data` (sized a multiple of the sector size) at `sector`.
  /// Unaligned head/tail pages are handled with read-modify-write.
  /// Returns the completion time of the last page program.
  Result<Microseconds> write(std::uint64_t sector, const std::vector<std::uint8_t>& data,
                             Microseconds now, double buffer_utilization = 0.0);

  /// Read `sectors` sectors starting at `sector`. Unwritten regions read
  /// as zeroes. Returns the data and delivery time.
  struct ReadResult {
    std::vector<std::uint8_t> data;
    Microseconds complete = 0;
  };
  Result<ReadResult> read(std::uint64_t sector, std::uint64_t sectors, Microseconds now);

  /// Discard whole pages covered by the sector range (partial pages at the
  /// edges are left intact, as real devices do for unaligned TRIM).
  Status trim(std::uint64_t sector, std::uint64_t sectors);

  /// Flush barrier: returns when every previously issued write is durable.
  [[nodiscard]] Microseconds flush() const { return ftl_.device().all_idle_at(); }

  [[nodiscard]] const BlockDeviceStats& stats() const { return stats_; }
  [[nodiscard]] ftl::FtlBase& ftl() { return ftl_; }

 private:
  /// Current contents of a page as bytes (zero-filled when unwritten),
  /// charging the read to the device timeline.
  std::vector<std::uint8_t> page_bytes(Lpn lpn, Microseconds now, Microseconds* complete);

  ftl::FtlBase& ftl_;
  BlockDeviceConfig config_;
  std::uint32_t sectors_per_page_;
  BlockDeviceStats stats_;
};

}  // namespace rps::host
