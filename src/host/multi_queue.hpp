// NVMe-flavored multi-queue host frontend.
//
// N submission/completion queue pairs, one per tenant, on top of one
// command controller. Each tenant's precomputed open-loop trace feeds its
// submission queue; at every event instant the arbiter (round-robin /
// WRR / WDRR, src/controller/arbiter.hpp) decides which queue's head to
// admit, subject to the tenant's in-flight cap. Admitted commands carry
// the tenant's write-stream hint, so the allocator segregates tenant
// data onto distinct active blocks.
//
// The whole replay is a single-threaded discrete-event loop over two
// event sources — tenant arrivals and command completions — so one run
// is deterministic, and --jobs parallelism lives entirely outside it
// (trace generation, independent bench cells). Completion latency is
// measured open-loop: completion time minus *arrival* time, so queueing
// delay under contention is included — that is the quantity QoS
// arbitration bounds.
//
// Idle windows mirror sim::Simulator: when nothing is in flight and the
// next arrival leaves a gap larger than idle_threshold_us, the FTL gets
// its on_idle() callback (background GC, wear leveling, read scrubbing).
// An open-loop frontend must preserve those semantics — the scrub
// regression test pins it.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/controller/arbiter.hpp"
#include "src/controller/controller.hpp"
#include "src/host/tenant.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/sampler.hpp"
#include "src/util/index_bitset.hpp"

namespace rps::host {

struct MultiQueueConfig {
  ctrl::ArbiterConfig arbiter;
  /// Gap (us) between last completion and next arrival that counts as an
  /// idle window (same meaning as sim::SimConfig::idle_threshold_us).
  Microseconds idle_threshold_us = 1'000;
  /// Shared controller admission budget in pages across ALL tenants
  /// (0 = unlimited). NVMe-style shared slot pool: a head is eligible
  /// only while its page cost fits the remaining budget, so under
  /// saturation the *arbiter* decides who gets the scarce pages — this
  /// is what lets a cost-aware policy (WDRR) bound a victim's tail
  /// against a large-write flood where cost-blind RR cannot. A command
  /// larger than the whole budget is admitted alone (when nothing else
  /// is in flight) rather than deadlocking.
  std::uint32_t shared_page_budget = 0;
  bool stripe_writes = true;
  /// Keep the controller's per-op log (faultsim's oracle join needs it).
  bool keep_op_log = false;
  /// Keep one AdmissionRecord per admitted command (property tests).
  bool keep_admission_log = false;
};

/// One admission, in admission order (the property tests check FIFO
/// order per tenant and weight-proportional admission over windows).
struct AdmissionRecord {
  std::uint32_t tenant = 0;
  std::uint64_t seq = 0;          // position within the tenant's queue
  Microseconds arrival_us = 0;    // open-loop arrival stamp
  Microseconds admit_us = 0;      // instant the arbiter admitted it
  ctrl::CommandId id = 0;
  std::uint32_t pages = 0;
  bool write = false;
};

/// Per-tenant completion-side accounting.
struct TenantResult {
  std::uint32_t id = 0;
  std::uint64_t submitted = 0;   // admitted to the controller
  std::uint64_t completed = 0;   // fully retired
  std::uint64_t aborted = 0;     // torn off by a power loss
  std::uint64_t failed = 0;      // completed but not ok (allocation failure)
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t pages = 0;
  std::uint64_t read_errors = 0;
  /// completion - arrival, all completed commands / writes only.
  obs::LatencyHistogram latency_us;
  obs::LatencyHistogram write_latency_us;
  Microseconds last_complete_us = 0;
};

struct MultiQueueResult {
  std::vector<TenantResult> tenants;
  Microseconds end_time_us = 0;  // last completion (or crash cut)
  std::uint64_t idle_windows = 0;
  bool crashed = false;

  /// FNV-1a over every tenant's counters and histogram JSON — one word
  /// that differs if any per-tenant distribution differs. CI asserts
  /// digest equality across --jobs values.
  [[nodiscard]] std::uint64_t digest() const;
};

class MultiQueueFrontend {
 public:
  explicit MultiQueueFrontend(ftl::FtlBase& ftl, MultiQueueConfig config = {});

  /// Register tenant `config.id` with its precomputed open-loop trace
  /// (tenant_trace / build_tenant_traces). Tenants must be added in id
  /// order 0..N-1, before run().
  void add_tenant(const TenantConfig& config, workload::Trace trace);

  /// Per-tenant StateSampler lane (borrowed, may be null). The frontend
  /// installs a collector exposing that tenant's live queue state — u =
  /// in-flight / cap, sbqueue = in-flight commands, queued_write_ops =
  /// backlog (arrived, not yet admitted) — and ticks it at every event
  /// instant of the replay.
  void attach_tenant_sampler(std::uint32_t tenant, obs::StateSampler* sampler);

  /// Controller-level observability pass-through (trace sink + global
  /// sampler, both borrowed / nullable).
  void set_observability(obs::TraceSink* sink, obs::StateSampler* sampler);

  /// Replay every tenant queue to completion. With a finite
  /// `crash_time_us`, stop at the cut instead (nothing at or after it is
  /// admitted or drained); follow with power_loss() to tear down.
  MultiQueueResult run(Microseconds crash_time_us = kTimeNever);

  /// Inject the cut at `t`: controller power loss + per-tenant abort
  /// accounting folded into the result that run() returned (returns the
  /// updated copy).
  ctrl::PowerLossOutcome power_loss(Microseconds t, MultiQueueResult& result);

  [[nodiscard]] ctrl::Controller& controller() { return *controller_; }
  [[nodiscard]] const std::vector<AdmissionRecord>& admission_log() const {
    return admission_log_;
  }
  [[nodiscard]] std::uint32_t num_tenants() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

 private:
  struct Queue {
    TenantConfig config;
    workload::Trace trace;
    std::size_t next = 0;        // first request not yet admitted
    std::uint32_t in_flight = 0; // admitted, not yet completed
    TenantResult result;
    obs::StateSampler* sampler = nullptr;
  };
  struct Pending {
    std::uint32_t tenant = 0;
    Microseconds arrival = 0;
    std::uint32_t pages = 0;
    bool write = false;
  };
  /// (completion time, tenant, pages, write pages) — min-heap on time;
  /// the tiebreak on tenant keeps pops deterministic.
  struct Completion {
    Microseconds at;
    std::uint32_t tenant;
    std::uint32_t pages;
    std::uint32_t write_pages;
    bool operator>(const Completion& o) const {
      return at != o.at ? at > o.at : tenant > o.tenant;
    }
  };
  /// One tenant's next-unadmitted-head arrival — min-heap on time. `seq`
  /// pins the entry to the head it was pushed for: once the tenant
  /// advances past it (or the clock does), the entry is stale and pops
  /// lazily. This replaces an O(N) scan per event instant.
  struct Arrival {
    Microseconds at;
    std::uint32_t tenant;
    std::uint64_t seq;
    bool operator>(const Arrival& o) const {
      return at != o.at ? at > o.at : tenant > o.tenant;
    }
  };

  [[nodiscard]] Microseconds next_arrival();
  [[nodiscard]] double buffer_utilization() const;
  [[nodiscard]] bool budget_fits(std::uint32_t pages) const;
  /// Recompute tenant `i`'s admissibility (head arrived, under its cap,
  /// budget fits) and push the delta into the arbiter. O(1).
  void recompute_eligibility(std::uint32_t i);
  /// Shared-budget side effects of in-flight page-count changes: a grab
  /// can only evict currently-eligible queues, a release can only promote
  /// budget-blocked ones — each rescans just that set. No-ops with the
  /// budget disabled (eligibility is then tenant-local).
  void on_budget_grabbed();
  void on_budget_released();
  void process_instant(Microseconds t);
  void harvest(Microseconds t);
  void tick_samplers(Microseconds t);

  ftl::FtlBase& ftl_;
  MultiQueueConfig config_;
  std::unique_ptr<ctrl::Controller> controller_;
  std::unique_ptr<ctrl::QueueArbiter> arbiter_;  // built lazily at run()
  std::vector<Queue> queues_;
  std::unordered_map<ctrl::CommandId, Pending> pending_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions_;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals_;
  std::vector<AdmissionRecord> admission_log_;
  std::uint64_t in_flight_write_pages_ = 0;
  std::uint64_t in_flight_pages_ = 0;  // all commands; the shared budget
  Microseconds last_completion_ = 0;
  Microseconds cur_time_ = 0;  // samplers' collectors read this
  bool started_ = false;       // true once the first instant was processed
  std::uint64_t idle_windows_ = 0;
  // Incremental-eligibility mirrors: tenants the arbiter currently sees
  // as admissible, and tenants held back only by the shared page budget.
  util::IndexBitSet admissible_;
  util::IndexBitSet budget_blocked_;
  std::vector<std::uint32_t> rescan_scratch_;
};

}  // namespace rps::host
