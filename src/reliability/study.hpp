// The Fig. 4 reliability study harness: run many blocks under each program
// scheme and collect the per-page ΣWPi and BER sample populations that the
// paper reports as box plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nand/program_order.hpp"
#include "src/reliability/ber.hpp"
#include "src/reliability/interference.hpp"
#include "src/util/stats.hpp"

namespace rps::reliability {

/// The program schemes compared in Fig. 4 (plus the unconstrained strawman
/// of Fig. 2a that motivates ordering constraints in the first place).
enum class Scheme { kFps, kRpsFull, kRpsHalf, kRpsRandom, kUnconstrained };

constexpr const char* to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFps: return "FPS";
    case Scheme::kRpsFull: return "RPSfull";
    case Scheme::kRpsHalf: return "RPShalf";
    case Scheme::kRpsRandom: return "RPSrandom";
    case Scheme::kUnconstrained: return "Unconstrained";
  }
  return "?";
}

/// Generate the program order a scheme uses for one block. Random schemes
/// draw a fresh order per block from `rng`.
nand::ProgramOrder make_order(Scheme scheme, std::uint32_t wordlines, Rng& rng);

struct StudyConfig {
  std::uint32_t blocks = 90;          // the paper verified >90 blocks
  std::uint32_t wordlines = 64;
  InterferenceConfig interference;
  StressCondition stress = StressCondition::worst_case();
  std::uint64_t seed = 42;
};

struct StudyResult {
  Scheme scheme;
  SampleSet wpi_per_page;   // ΣWPi of each simulated word line (Fig. 4a)
  SampleSet ber_per_page;   // stressed BER of each word line (Fig. 4b)
  SampleSet aggressors;     // post-MSB aggressor count per word line
};

/// Run the study for one scheme.
StudyResult run_study(Scheme scheme, const StudyConfig& config);

/// Run the study for a list of schemes with a shared configuration.
std::vector<StudyResult> run_studies(const std::vector<Scheme>& schemes,
                                     const StudyConfig& config);

}  // namespace rps::reliability
