#include "src/reliability/ber.hpp"

#include <cmath>

namespace rps::reliability {

std::uint32_t bit_errors_for_cell(std::size_t state, double vth, const VthModel& model) {
  // Resolve the read state from the three references.
  std::size_t read_state = 0;
  while (read_state < kNumStates - 1 && vth > model.read_ref[read_state]) {
    ++read_state;
  }
  if (read_state == state) return 0;
  // States are Gray-coded (11, 01, 00, 10): adjacent misreads cost one bit.
  static constexpr std::uint8_t kGray[kNumStates] = {0b11, 0b01, 0b00, 0b10};
  const std::uint8_t diff = kGray[state] ^ kGray[read_state];
  return static_cast<std::uint32_t>((diff & 1u) + ((diff >> 1) & 1u));
}

double apply_stress(double vth, std::size_t state, const StressCondition& stress,
                    const VthModel& model, Rng& rng) {
  const double kcycles = stress.pe_cycles / 1000.0;
  if (kcycles > 0.0) {
    vth += model.pe_mean_shift_per_kcycle * kcycles;
    vth += rng.normal(0.0, model.pe_sigma_per_kcycle * kcycles);
  }
  if (stress.retention_days > 0.0 && state != 0) {
    // Charge loss scales with how much charge the state holds; normalize by
    // the highest state's level above erased.
    const double level = (model.state_mean[state] - model.state_mean[0]) /
                         (model.state_mean[kNumStates - 1] - model.state_mean[0]);
    const double decades = std::log10(1.0 + stress.retention_days);
    vth -= model.retention_shift_per_decade * decades * level;
    vth += rng.normal(0.0, model.retention_sigma_per_decade * decades * level);
  }
  return vth;
}

double page_ber(const CellPopulation& population, const StressCondition& stress,
                const VthModel& model, Rng& rng) {
  std::uint64_t bit_errors = 0;
  std::uint64_t bits = 0;
  for (std::size_t state = 0; state < kNumStates; ++state) {
    for (const double vth : population.vth_by_state[state]) {
      const double stressed = apply_stress(vth, state, stress, model, rng);
      bit_errors += bit_errors_for_cell(state, stressed, model);
      bits += 2;
    }
  }
  return bits == 0 ? 0.0 : static_cast<double>(bit_errors) / static_cast<double>(bits);
}

}  // namespace rps::reliability
