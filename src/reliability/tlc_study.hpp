// Reliability model for the TLC extension: 8 Vth states, 3-bit Gray
// coding, and cell-to-cell coupling from post-final-pass aggressor
// programs — the Fig. 4 methodology applied to the TLC sequence family of
// src/nand/tlc.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/nand/tlc.hpp"
#include "src/util/random.hpp"
#include "src/util/stats.hpp"

namespace rps::reliability {

inline constexpr std::size_t kTlcStates = 8;

struct TlcVthModel {
  /// Nominal post-program state means [V]; TLC packs 8 states into the
  /// same window MLC splits into 4, hence the tighter pitch.
  std::array<double, kTlcStates> state_mean{-2.7, 0.0, 0.8, 1.6,
                                            2.4,  3.2, 4.0, 4.8};
  std::array<double, kTlcStates - 1> read_ref{-1.2, 0.4, 1.2, 2.0, 2.8, 3.6, 4.4};
  double sigma_program = 0.07;  // tighter program-verify than MLC
  double sigma_erased = 0.30;
  double coupling_ratio = 0.08;
  /// Mean Vth increase an aggressor page program causes in its own cells,
  /// per pass (LSB coarse, CSB intermediate, MSB fine).
  std::array<double, 3> pass_delta{1.6, 1.2, 0.6};

  static constexpr TlcVthModel nominal() { return TlcVthModel{}; }
};

/// 3-bit Gray code of each state (LSB/CSB/MSB bits).
std::uint8_t tlc_gray(std::size_t state);

/// Bit errors when a cell programmed to `state` reads back at `vth`.
std::uint32_t tlc_bit_errors_for_cell(std::size_t state, double vth,
                                      const TlcVthModel& model);

struct TlcWordlineResult {
  std::array<std::vector<double>, kTlcStates> vth_by_state;
  double wpi_sum = 0.0;  // sum of the 8 per-state p0.1..p99.9 widths
  double ber = 0.0;      // fresh-condition bit error rate
  std::uint32_t aggressors_after_final = 0;
};

struct TlcStudyConfig {
  std::uint32_t cells_per_wordline = 512;
  TlcVthModel model = TlcVthModel::nominal();
};

/// Program one TLC block under `order`, Monte-Carlo per cell.
std::vector<TlcWordlineResult> simulate_tlc_block(const nand::TlcProgramOrder& order,
                                                  std::uint32_t wordlines,
                                                  const TlcStudyConfig& config,
                                                  Rng& rng);

enum class TlcScheme { kFps, kRpsFull, kRpsRandom, kUnconstrained };

constexpr const char* to_string(TlcScheme scheme) {
  switch (scheme) {
    case TlcScheme::kFps: return "TLC-FPS";
    case TlcScheme::kRpsFull: return "TLC-RPSfull";
    case TlcScheme::kRpsRandom: return "TLC-RPSrandom";
    case TlcScheme::kUnconstrained: return "TLC-Unconstrained";
  }
  return "?";
}

struct TlcStudyResult {
  TlcScheme scheme;
  SampleSet wpi_per_page;
  SampleSet ber_per_page;
  SampleSet aggressors;
};

TlcStudyResult run_tlc_study(TlcScheme scheme, std::uint32_t blocks,
                             std::uint32_t wordlines, const TlcStudyConfig& config,
                             std::uint64_t seed);

}  // namespace rps::reliability
