// Analog model of a 2-bit MLC cell's threshold-voltage (Vth) behaviour.
//
// This is the substitute for the paper's silicon measurements (Fig. 4): the
// paper characterized real 2X-nm chips; we model the same mechanisms —
// program-verify placement noise, cell-to-cell coupling from later
// neighbor programs, P/E-cycling widening and retention loss — with
// representative constants. The paper's Fig. 4 claim is *relative*
// (RPS accumulates no more interference than FPS), and that relation is a
// combinatorial property of the program order which the model preserves
// exactly; the constants only scale the axes.
#pragma once

#include <array>
#include <cstdint>

namespace rps::reliability {

/// The four final Vth states of a 2-bit cell, in Gray order 11,01,00,10
/// (Fig. 1). State 0 is erased.
inline constexpr std::size_t kNumStates = 4;

struct VthModel {
  /// Nominal post-program state means [V].
  std::array<double, kNumStates> state_mean{-2.7, 0.8, 2.0, 3.2};
  /// Read references between adjacent states [V] (VRef1..VRef3 in Fig. 1).
  std::array<double, kNumStates - 1> read_ref{-0.8, 1.4, 2.6};
  /// Program-verify placement noise (per-cell sigma) for programmed states.
  double sigma_program = 0.11;
  /// Erased-state distribution is wide (erase is coarse).
  double sigma_erased = 0.30;
  /// The transient LSB-only placement (X1 in Fig. 1) sits between E and P2.
  double lsb_programmed_mean = 1.2;
  double lsb_read_ref = -0.8;  // VRef0: separates E from X1 with a big margin
  double sigma_lsb = 0.18;

  /// Cell-to-cell coupling ratio: a neighbor cell's Vth increase of dV
  /// shifts the victim by coupling_ratio * dV.
  double coupling_ratio = 0.08;

  /// P/E-cycle stress: per-1K-cycle additive sigma (oxide damage widens
  /// distributions) and mean upshift (trapped charge).
  double pe_sigma_per_kcycle = 0.035;
  double pe_mean_shift_per_kcycle = 0.02;

  /// Retention: charge loss moves programmed states down and widens them,
  /// roughly logarithmically in time; coefficients are per log10(1+days).
  double retention_shift_per_decade = 0.12;
  double retention_sigma_per_decade = 0.05;

  /// Bits stored per page per simulated cell sample. Used to convert
  /// misread counts to a bit error rate.
  static constexpr double kBitsPerCell = 2.0;

  static constexpr VthModel nominal() { return VthModel{}; }
};

/// Stress condition applied before a BER measurement. The paper's
/// worst-case condition is 3K P/E cycles and 1 year of retention.
struct StressCondition {
  double pe_cycles = 0.0;
  double retention_days = 0.0;

  static constexpr StressCondition fresh() { return {0.0, 0.0}; }
  static constexpr StressCondition worst_case() { return {3000.0, 365.0}; }
};

}  // namespace rps::reliability
