#include "src/reliability/study.hpp"

namespace rps::reliability {

nand::ProgramOrder make_order(Scheme scheme, std::uint32_t wordlines, Rng& rng) {
  switch (scheme) {
    case Scheme::kFps: return nand::fps_order(wordlines);
    case Scheme::kRpsFull: return nand::rps_full_order(wordlines);
    case Scheme::kRpsHalf: return nand::rps_half_order(wordlines);
    case Scheme::kRpsRandom: return nand::random_rps_order(wordlines, rng);
    case Scheme::kUnconstrained: return nand::random_unconstrained_order(wordlines, rng);
  }
  return nand::fps_order(wordlines);
}

StudyResult run_study(Scheme scheme, const StudyConfig& config) {
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(scheme) << 32));
  StudyResult result;
  result.scheme = scheme;
  const std::size_t pages = static_cast<std::size_t>(config.blocks) * config.wordlines;
  result.wpi_per_page.reserve(pages);
  result.ber_per_page.reserve(pages);
  result.aggressors.reserve(pages);

  for (std::uint32_t b = 0; b < config.blocks; ++b) {
    const nand::ProgramOrder order = make_order(scheme, config.wordlines, rng);
    const std::vector<WordlineResult> block =
        simulate_block(order, config.wordlines, config.interference, rng);
    for (const WordlineResult& wl : block) {
      result.wpi_per_page.add(wl.wpi_sum);
      result.ber_per_page.add(
          page_ber(wl.population, config.stress, config.interference.model, rng));
      result.aggressors.add(static_cast<double>(wl.aggressors_after_msb));
    }
  }
  return result;
}

std::vector<StudyResult> run_studies(const std::vector<Scheme>& schemes,
                                     const StudyConfig& config) {
  std::vector<StudyResult> results;
  results.reserve(schemes.size());
  for (const Scheme scheme : schemes) results.push_back(run_study(scheme, config));
  return results;
}

}  // namespace rps::reliability
