#include "src/reliability/interference.hpp"

#include <algorithm>
#include <cassert>

namespace rps::reliability {

double distribution_width(const std::vector<double>& vth) {
  if (vth.size() < 2) return 0.0;
  SampleSet samples;
  samples.add_all(vth);
  return samples.percentile(99.9) - samples.percentile(0.1);
}

namespace {

/// Vth increase of one aggressor cell during its program step. The victim
/// sees coupling_ratio times this. LSB programs move half the cells from
/// the erased level to the transient X1 level; MSB programs move cells from
/// {E, X1} to their final state.
double aggressor_delta_v(nand::PageType type, const VthModel& m, Rng& rng) {
  if (type == nand::PageType::kLsb) {
    // LSB data '1' keeps the cell erased (no shift); '0' programs to X1.
    if (rng.chance(0.5)) return 0.0;
    return m.lsb_programmed_mean - m.state_mean[0];
  }
  // MSB program, transitions of Fig. 1: '11' stays erased (no shift),
  // '01' and '00' are refined from the transient X1 level, '10' is driven
  // from X1 to the highest state.
  switch (rng.next_below(4)) {
    case 0: return 0.0;                                            // stays 11
    case 1: return std::max(0.0, m.state_mean[1] - m.lsb_programmed_mean);
    case 2: return std::max(0.0, m.state_mean[2] - m.lsb_programmed_mean);
    default: return m.state_mean[3] - m.lsb_programmed_mean;
  }
}

}  // namespace

std::vector<WordlineResult> simulate_block(const nand::ProgramOrder& order,
                                           std::uint32_t wordlines,
                                           const InterferenceConfig& config,
                                           Rng& rng) {
  assert(order.size() == static_cast<std::size_t>(wordlines) * 2);
  const VthModel& m = config.model;

  // Per word line: cumulative coupling shift each of its cells will absorb
  // after its *final* (MSB) program, sampled per cell at the end. We track
  // the total aggressor delta-V sum per victim cell position.
  // Cells are simulated independently: victim cell i has its own aggressor
  // draws (neighbor cells are distinct physical cells per victim column).
  std::vector<std::uint32_t> msb_step(wordlines, 0);
  std::vector<std::uint32_t> lsb_step(wordlines, 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    const auto pos = order[i];
    (pos.type == nand::PageType::kLsb ? lsb_step : msb_step)[pos.wordline] = i;
  }

  // For each victim word line, the list of aggressor programs that land
  // after its MSB program: (page type of aggressor).
  std::vector<std::vector<nand::PageType>> aggressors(wordlines);
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    for (const std::int64_t nb : {static_cast<std::int64_t>(k) - 1,
                                  static_cast<std::int64_t>(k) + 1}) {
      if (nb < 0 || nb >= static_cast<std::int64_t>(wordlines)) continue;
      const auto w = static_cast<std::uint32_t>(nb);
      if (lsb_step[w] > msb_step[k]) aggressors[k].push_back(nand::PageType::kLsb);
      if (msb_step[w] > msb_step[k]) aggressors[k].push_back(nand::PageType::kMsb);
    }
  }

  std::vector<WordlineResult> results(wordlines);
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    WordlineResult& out = results[k];
    out.aggressors_after_msb = static_cast<std::uint32_t>(aggressors[k].size());
    for (auto& v : out.population.vth_by_state) {
      v.reserve(config.cells_per_wordline / kNumStates + 1);
    }
    for (std::uint32_t cell = 0; cell < config.cells_per_wordline; ++cell) {
      // Final programmed state: the four 2-bit patterns are equally likely
      // for random data.
      const auto state = static_cast<std::size_t>(rng.next_below(kNumStates));
      const double sigma = state == 0 ? m.sigma_erased : m.sigma_program;
      double vth = rng.normal(m.state_mean[state], sigma);
      // Post-program aggressor coupling: each later neighbor program adds
      // coupling_ratio * (that neighbor cell's Vth increase).
      for (const nand::PageType aggressor_type : aggressors[k]) {
        vth += m.coupling_ratio * aggressor_delta_v(aggressor_type, m, rng);
      }
      out.population.vth_by_state[state].push_back(vth);
    }
    for (const auto& v : out.population.vth_by_state) {
      out.wpi_sum += distribution_width(v);
    }
  }
  return results;
}

}  // namespace rps::reliability
