// Monte-Carlo simulation of cell-to-cell interference under a program order.
//
// Programs a block's word lines in a given order while tracking, per victim
// word line, the coupling shifts induced by *later* programs to neighboring
// word lines (earlier neighbor programs are compensated by the victim's own
// program-verify step, which is why only post-program aggressors matter —
// Section 2.1). Produces per-state Vth sample populations from which WPi
// (distribution width per state, Fig. 4a) and BER (Fig. 4b) are computed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/nand/program_order.hpp"
#include "src/reliability/vth_model.hpp"
#include "src/util/random.hpp"
#include "src/util/stats.hpp"

namespace rps::reliability {

/// Vth samples of one word line's cells after the whole block is programmed,
/// grouped by the cell's final 2-bit state.
struct CellPopulation {
  std::array<std::vector<double>, kNumStates> vth_by_state;

  [[nodiscard]] std::size_t total_cells() const {
    std::size_t n = 0;
    for (const auto& v : vth_by_state) n += v.size();
    return n;
  }
};

/// Width of one state's Vth distribution: the p0.1..p99.9 spread, a robust
/// stand-in for the read-window width the paper measures.
double distribution_width(const std::vector<double>& vth);

/// Per-word-line interference outcome.
struct WordlineResult {
  CellPopulation population;
  /// Sum of the four per-state widths — the paper's per-page ΣWPi metric.
  double wpi_sum = 0.0;
  std::uint32_t aggressors_after_msb = 0;
};

struct InterferenceConfig {
  std::uint32_t cells_per_wordline = 1024;
  VthModel model = VthModel::nominal();
};

/// Simulate programming one block under `order`; returns one result per
/// word line.
std::vector<WordlineResult> simulate_block(const nand::ProgramOrder& order,
                                           std::uint32_t wordlines,
                                           const InterferenceConfig& config,
                                           Rng& rng);

}  // namespace rps::reliability
