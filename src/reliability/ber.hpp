// Bit-error-rate model: applies P/E-cycling and retention stress to the
// post-interference Vth populations and counts read-reference crossings.
#pragma once

#include <cstdint>

#include "src/reliability/interference.hpp"
#include "src/reliability/vth_model.hpp"
#include "src/util/random.hpp"

namespace rps::reliability {

/// Number of bit errors when reading one cell whose final state is `state`
/// but whose stressed Vth is `vth`: 2-bit Gray coding means adjacent-state
/// misreads flip exactly one bit, two-state misreads flip up to two.
std::uint32_t bit_errors_for_cell(std::size_t state, double vth, const VthModel& model);

/// Apply stress to one cell's Vth (in place semantics via return value).
double apply_stress(double vth, std::size_t state, const StressCondition& stress,
                    const VthModel& model, Rng& rng);

/// BER of one word line's population under `stress`.
double page_ber(const CellPopulation& population, const StressCondition& stress,
                const VthModel& model, Rng& rng);

}  // namespace rps::reliability
