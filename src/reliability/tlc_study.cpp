#include "src/reliability/tlc_study.hpp"

#include <cassert>

#include "src/reliability/interference.hpp"  // distribution_width

namespace rps::reliability {

std::uint8_t tlc_gray(std::size_t state) {
  // Standard 3-bit binary-reflected Gray code: adjacent states differ in
  // exactly one bit, so an adjacent misread costs one bit error.
  static constexpr std::uint8_t kGray[kTlcStates] = {0b111, 0b110, 0b100, 0b101,
                                                     0b001, 0b000, 0b010, 0b011};
  return kGray[state];
}

std::uint32_t tlc_bit_errors_for_cell(std::size_t state, double vth,
                                      const TlcVthModel& model) {
  std::size_t read_state = 0;
  while (read_state < kTlcStates - 1 && vth > model.read_ref[read_state]) {
    ++read_state;
  }
  const std::uint8_t diff = tlc_gray(state) ^ tlc_gray(read_state);
  return static_cast<std::uint32_t>((diff & 1u) + ((diff >> 1) & 1u) +
                                    ((diff >> 2) & 1u));
}

std::vector<TlcWordlineResult> simulate_tlc_block(const nand::TlcProgramOrder& order,
                                                  std::uint32_t wordlines,
                                                  const TlcStudyConfig& config,
                                                  Rng& rng) {
  assert(order.size() == static_cast<std::size_t>(wordlines) * 3);
  const TlcVthModel& m = config.model;

  // Step index of every page, then the aggressor pass list per word line:
  // neighbor programs landing after the word line's final (MSB) pass.
  std::vector<std::uint32_t> step_of(wordlines * 3, 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    step_of[order[i].flat_index()] = i;
  }
  std::vector<std::vector<std::size_t>> aggressors(wordlines);
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    const std::uint32_t final_step =
        step_of[nand::TlcPagePos{k, nand::TlcPageType::kMsb}.flat_index()];
    for (const std::int64_t nb : {static_cast<std::int64_t>(k) - 1,
                                  static_cast<std::int64_t>(k) + 1}) {
      if (nb < 0 || nb >= static_cast<std::int64_t>(wordlines)) continue;
      const auto w = static_cast<std::uint32_t>(nb);
      for (std::size_t pass = 0; pass < 3; ++pass) {
        const nand::TlcPagePos pos{w, static_cast<nand::TlcPageType>(pass)};
        if (step_of[pos.flat_index()] > final_step) aggressors[k].push_back(pass);
      }
    }
  }

  std::vector<TlcWordlineResult> results(wordlines);
  for (std::uint32_t k = 0; k < wordlines; ++k) {
    TlcWordlineResult& out = results[k];
    out.aggressors_after_final = static_cast<std::uint32_t>(aggressors[k].size());
    std::uint64_t bit_errors = 0;
    for (std::uint32_t cell = 0; cell < config.cells_per_wordline; ++cell) {
      const auto state = static_cast<std::size_t>(rng.next_below(kTlcStates));
      const double sigma = state == 0 ? m.sigma_erased : m.sigma_program;
      double vth = rng.normal(m.state_mean[state], sigma);
      for (const std::size_t pass : aggressors[k]) {
        // Half the aggressor cells move in a given pass for random data.
        if (rng.chance(0.5)) vth += m.coupling_ratio * m.pass_delta[pass];
      }
      out.vth_by_state[state].push_back(vth);
      bit_errors += tlc_bit_errors_for_cell(state, vth, m);
    }
    for (const auto& v : out.vth_by_state) out.wpi_sum += distribution_width(v);
    out.ber = static_cast<double>(bit_errors) /
              (3.0 * static_cast<double>(config.cells_per_wordline));
  }
  return results;
}

TlcStudyResult run_tlc_study(TlcScheme scheme, std::uint32_t blocks,
                             std::uint32_t wordlines, const TlcStudyConfig& config,
                             std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(scheme) << 40));
  TlcStudyResult result;
  result.scheme = scheme;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    nand::TlcProgramOrder order;
    switch (scheme) {
      case TlcScheme::kFps: order = nand::tlc_fps_order(wordlines); break;
      case TlcScheme::kRpsFull: order = nand::tlc_rps_full_order(wordlines); break;
      case TlcScheme::kRpsRandom: order = nand::random_tlc_rps_order(wordlines, rng); break;
      case TlcScheme::kUnconstrained:
        order = nand::random_tlc_unconstrained_order(wordlines, rng);
        break;
    }
    for (const TlcWordlineResult& wl :
         simulate_tlc_block(order, wordlines, config, rng)) {
      result.wpi_per_page.add(wl.wpi_sum);
      result.ber_per_page.add(wl.ber);
      result.aggressors.add(static_cast<double>(wl.aggressors_after_final));
    }
  }
  return result;
}

}  // namespace rps::reliability
