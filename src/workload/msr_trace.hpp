// Importer for MSR Cambridge-style block traces — the de-facto standard
// public I/O trace format (SNIA IOTTA), so real-world traces can be
// replayed against the simulator:
//
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime units (100 ns ticks), Type is
// "Read"/"Write", Offset and Size are bytes. Requests are converted to the
// simulator's page-granular form; offsets can optionally be wrapped into
// the target device's logical space (public traces address disks far
// larger than a scaled-down simulated device).
#pragma once

#include <istream>
#include <string>

#include "src/util/result.hpp"
#include "src/workload/trace.hpp"

namespace rps::workload {

struct MsrImportOptions {
  /// Page size the byte offsets/lengths are converted to.
  std::uint32_t page_size_bytes = 4096;
  /// When nonzero, LPNs are wrapped modulo this span (pages).
  Lpn wrap_span_pages = 0;
  /// Keep only rows of this disk number; -1 keeps every disk.
  std::int32_t disk_filter = -1;
  /// Cap on imported requests; 0 = unlimited.
  std::uint64_t max_requests = 0;
};

/// Parse an MSR-format CSV stream. Rows that do not parse are counted and
/// skipped, never silently dropped.
struct MsrImportResult {
  Trace trace;
  std::uint64_t skipped_rows = 0;
};

Result<MsrImportResult> import_msr_trace(std::istream& input,
                                         const MsrImportOptions& options);

/// Convenience: open and parse a file.
Result<MsrImportResult> import_msr_trace_file(const std::string& path,
                                              const MsrImportOptions& options);

}  // namespace rps::workload
