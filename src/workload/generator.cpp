#include "src/workload/generator.hpp"

#include <algorithm>
#include <cassert>

namespace rps::workload {

SyntheticConfig preset_config(Preset preset, Lpn working_set_pages,
                              std::uint64_t total_requests, std::uint64_t seed) {
  SyntheticConfig c;
  c.name = to_string(preset);
  c.working_set_pages = working_set_pages;
  c.total_requests = total_requests;
  c.seed = seed;
  switch (preset) {
    case Preset::kOltp:
      // Intensive DB point queries/updates: small requests, read-mostly,
      // essentially no idle time between successive I/Os.
      c.read_fraction = 0.7;
      c.size_dist = {{1, 0.65}, {2, 0.25}, {4, 0.10}};
      c.mean_burst_requests = 5000.0;
      c.intra_burst_gap_us = 20;
      c.inter_burst_gap_us = 500;
      c.idle_probability = 0.01;
      c.idle_mean_us = 2'000;
      c.zipf_theta = 0.9;
      break;
    case Preset::kNtrx:
      // Write-heavy transactional load, same intensity profile as OLTP.
      c.read_fraction = 0.3;
      c.size_dist = {{1, 0.60}, {2, 0.30}, {4, 0.10}};
      c.mean_burst_requests = 5000.0;
      c.intra_burst_gap_us = 40;
      c.inter_burst_gap_us = 500;
      c.idle_probability = 0.01;
      c.idle_mean_us = 2'000;
      c.zipf_theta = 0.9;
      break;
    case Preset::kWebserver:
      // Read-dominant page serving with large idle times.
      c.read_fraction = 0.8;
      c.size_dist = {{1, 0.30}, {2, 0.30}, {4, 0.25}, {8, 0.15}};
      c.mean_burst_requests = 60.0;
      c.intra_burst_gap_us = 250;
      c.inter_burst_gap_us = 5'000;
      c.idle_probability = 0.5;
      c.idle_mean_us = 300'000;
      c.zipf_theta = 0.8;
      break;
    case Preset::kVarmail:
      // Mail server: write-intensive bursts (message delivery + fsync
      // storms) separated by a fair amount of idle time.
      c.read_fraction = 0.5;
      c.size_dist = {{1, 0.50}, {2, 0.35}, {4, 0.15}};
      c.mean_burst_requests = 600.0;
      c.intra_burst_gap_us = 8;
      c.inter_burst_gap_us = 2'000;
      c.idle_probability = 0.55;
      c.idle_mean_us = 320'000;
      c.zipf_theta = 0.85;
      break;
    case Preset::kFileserver:
      // File server: larger writes, bursty, idle periods between sessions.
      c.read_fraction = 1.0 / 3.0;
      c.size_dist = {{1, 0.20}, {2, 0.30}, {4, 0.30}, {8, 0.20}};
      c.mean_burst_requests = 200.0;
      c.intra_burst_gap_us = 25;
      c.inter_burst_gap_us = 2'500;
      c.idle_probability = 0.60;
      c.idle_mean_us = 500'000;
      c.zipf_theta = 0.95;
      break;
  }
  return c;
}

namespace {

std::uint32_t sample_size(const SizeDistribution& dist, Rng& rng) {
  double total = 0.0;
  for (const auto& [pages, weight] : dist) total += weight;
  double pick = rng.next_double() * total;
  for (const auto& [pages, weight] : dist) {
    pick -= weight;
    if (pick <= 0.0) return pages;
  }
  return dist.back().first;
}

}  // namespace

Trace generate(const SyntheticConfig& config) {
  assert(config.working_set_pages > 0);
  assert(!config.size_dist.empty());
  Rng rng(config.seed);
  // Zipf over "chunks" rather than raw pages so multi-page requests stay
  // aligned and hot chunks are rewritten as units (realistic invalidation).
  const std::uint32_t chunk_pages =
      std::max_element(config.size_dist.begin(), config.size_dist.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; })
          ->first;
  const std::uint64_t chunks =
      std::max<std::uint64_t>(1, config.working_set_pages / chunk_pages);
  const ZipfGenerator zipf(chunks, config.zipf_theta);

  Trace trace(config.name);
  trace.reserve(config.total_requests);

  Microseconds now = 0;
  std::uint64_t emitted = 0;
  while (emitted < config.total_requests) {
    // Geometric burst length with the configured mean (>= 1).
    const double p = 1.0 / std::max(1.0, config.mean_burst_requests);
    std::uint64_t burst = 1;
    while (burst < config.total_requests && !rng.chance(p)) ++burst;

    for (std::uint64_t i = 0; i < burst && emitted < config.total_requests; ++i) {
      IoRequest r;
      r.arrival_us = now;
      r.kind = rng.chance(config.read_fraction) ? IoKind::kRead : IoKind::kWrite;
      r.page_count = sample_size(config.size_dist, rng);
      const std::uint64_t chunk = zipf.sample(rng);
      const Lpn base = static_cast<Lpn>(chunk) * chunk_pages;
      // Offset within the chunk when the request is smaller than it.
      const std::uint32_t slack = chunk_pages - std::min(chunk_pages, r.page_count);
      const Lpn offset = slack == 0 ? 0 : rng.next_below(slack + 1);
      r.lpn = std::min<Lpn>(base + offset,
                            config.working_set_pages - r.page_count);
      trace.add(r);
      ++emitted;
      now += static_cast<Microseconds>(
          rng.exponential(static_cast<double>(config.intra_burst_gap_us)) + 1.0);
    }
    // Burst boundary: long idle period or short think time.
    const double mean_gap = rng.chance(config.idle_probability)
                                ? static_cast<double>(config.idle_mean_us)
                                : static_cast<double>(config.inter_burst_gap_us);
    now += static_cast<Microseconds>(rng.exponential(mean_gap) + 1.0);
  }
  return trace;
}

Trace generate_open_loop(const OpenLoopConfig& config) {
  assert(config.working_set_pages > 0);
  assert(!config.size_dist.empty());
  Rng rng(config.seed);
  const std::uint32_t chunk_pages =
      std::max_element(config.size_dist.begin(), config.size_dist.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; })
          ->first;
  const std::uint64_t chunks =
      std::max<std::uint64_t>(1, config.working_set_pages / chunk_pages);
  const ZipfGenerator zipf(chunks, config.zipf_theta);

  Trace trace(config.name);
  trace.reserve(config.total_requests);

  const auto emit = [&](Microseconds at) {
    IoRequest r;
    r.arrival_us = at;
    r.kind = rng.chance(config.read_fraction) ? IoKind::kRead : IoKind::kWrite;
    r.page_count = static_cast<std::uint32_t>(std::min<Lpn>(
        sample_size(config.size_dist, rng), config.working_set_pages));
    const std::uint64_t chunk = zipf.sample(rng);
    const Lpn base = static_cast<Lpn>(chunk) * chunk_pages;
    const std::uint32_t slack = chunk_pages - std::min(chunk_pages, r.page_count);
    const Lpn offset = slack == 0 ? 0 : rng.next_below(slack + 1);
    r.lpn = config.first_lpn +
            std::min<Lpn>(base + offset, config.working_set_pages - r.page_count);
    trace.add(r);
  };

  // The clock below is *sim-time*: every gap and OFF period advances a
  // running `now` that each arrival is stamped with. (An earlier design
  // stamped arrival k at k x mean_interarrival — a uniform grid with no
  // long gaps, which silently disabled the idle-window GC/scrub path for
  // bursty tenants. The scrub-count regression test pins this behavior.)
  Microseconds now = config.start_us;
  std::uint64_t emitted = 0;
  const auto gap = [&](Microseconds mean) {
    return static_cast<Microseconds>(rng.exponential(static_cast<double>(mean)) + 1.0);
  };
  if (config.arrival == ArrivalProcess::kPoisson) {
    while (emitted < config.total_requests) {
      now += gap(config.mean_interarrival_us);
      emit(now);
      ++emitted;
    }
  } else {
    while (emitted < config.total_requests) {
      const Microseconds on_end = now + gap(config.on_mean_us);
      while (now < on_end && emitted < config.total_requests) {
        emit(now);
        ++emitted;
        now += gap(config.mean_interarrival_us);
      }
      now = std::max(now, on_end) + gap(config.off_mean_us);
    }
  }
  return trace;
}

Trace sequential_fill(Lpn pages, std::uint32_t pages_per_request) {
  Trace trace("sequential-fill");
  trace.reserve(pages / pages_per_request + 1);
  for (Lpn lpn = 0; lpn < pages; lpn += pages_per_request) {
    IoRequest r;
    r.arrival_us = 0;
    r.kind = IoKind::kWrite;
    r.lpn = lpn;
    r.page_count = static_cast<std::uint32_t>(
        std::min<Lpn>(pages_per_request, pages - lpn));
    trace.add(r);
  }
  return trace;
}

}  // namespace rps::workload
