#include "src/workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace rps::workload {

std::string TraceStats::intensiveness() const {
  // Buckets chosen to match Table 1's qualitative labels for the presets.
  const double rate = iops();
  if (rate >= 4000.0) return "Very high";
  if (rate >= 500.0) return "High";
  if (rate >= 50.0) return "Moderate";
  return "Low";
}

void Trace::sort_by_arrival() {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const IoRequest& a, const IoRequest& b) {
                     return a.arrival_us < b.arrival_us;
                   });
}

bool Trace::is_sorted() const {
  return std::is_sorted(requests_.begin(), requests_.end(),
                        [](const IoRequest& a, const IoRequest& b) {
                          return a.arrival_us < b.arrival_us;
                        });
}

Lpn Trace::lpn_span() const {
  Lpn span = 0;
  for (const IoRequest& r : requests_) {
    span = std::max(span, r.lpn + r.page_count);
  }
  return span;
}

TraceStats Trace::stats(Microseconds idle_threshold_us) const {
  TraceStats s;
  s.idle_threshold_us = idle_threshold_us;
  if (requests_.empty()) return s;
  s.requests = requests_.size();
  Microseconds prev = requests_.front().arrival_us;
  Microseconds idle_total = 0;
  for (const IoRequest& r : requests_) {
    if (r.kind == IoKind::kRead) {
      ++s.read_requests;
      s.read_pages += r.page_count;
    } else {
      ++s.write_requests;
      s.write_pages += r.page_count;
    }
    const Microseconds gap = r.arrival_us - prev;
    if (gap > idle_threshold_us) idle_total += gap;
    prev = r.arrival_us;
  }
  s.duration_us = requests_.back().arrival_us - requests_.front().arrival_us;
  if (s.requests > 1) {
    s.mean_interarrival_us = s.duration_us / static_cast<Microseconds>(s.requests - 1);
  }
  s.idle_fraction = s.duration_us <= 0
                        ? 0.0
                        : static_cast<double>(idle_total) /
                              static_cast<double>(s.duration_us);
  return s;
}

Status Trace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status{ErrorCode::kInvalidArgument};
  out << "# flexnand trace: " << name_ << "\n";
  for (const IoRequest& r : requests_) {
    out << r.arrival_us << " " << to_string(r.kind) << " " << r.lpn << " "
        << r.page_count << "\n";
  }
  return out ? Status::ok() : Status{ErrorCode::kInvalidArgument};
}

Result<Trace> Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return ErrorCode::kNotFound;
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto tag = line.find("trace: ");
      if (tag != std::string::npos) trace.set_name(line.substr(tag + 7));
      continue;
    }
    std::istringstream fields(line);
    IoRequest r;
    std::string kind;
    if (!(fields >> r.arrival_us >> kind >> r.lpn >> r.page_count)) {
      return ErrorCode::kInvalidArgument;
    }
    r.kind = kind == "R" ? IoKind::kRead : IoKind::kWrite;
    trace.add(r);
  }
  return trace;
}

}  // namespace rps::workload
