// Block-level I/O request stream types.
//
// The FTLs under test see exactly what the paper's host-level FTL saw from
// Sysbench/Filebench: a time-stamped stream of page-granular reads and
// writes over a logical address space.
#pragma once

#include <cstdint>

#include "src/util/types.hpp"

namespace rps::workload {

enum class IoKind : std::uint8_t { kRead = 0, kWrite = 1 };

constexpr const char* to_string(IoKind kind) {
  return kind == IoKind::kRead ? "R" : "W";
}

struct IoRequest {
  Microseconds arrival_us = 0;
  IoKind kind = IoKind::kWrite;
  Lpn lpn = 0;                 // first logical page
  std::uint32_t page_count = 1;

  friend bool operator==(const IoRequest&, const IoRequest&) = default;
};

}  // namespace rps::workload
