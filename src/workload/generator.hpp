// Synthetic workload synthesis.
//
// The paper drives its FTLs with Sysbench (OLTP, NTRX) and Filebench
// (Webserver, Varmail, Fileserver). Those generators produce block-level
// request streams characterized in Table 1 by read:write ratio and I/O
// intensiveness, with prose descriptions of their idle behaviour. We
// reproduce the *streams* with a bursty open/closed hybrid model:
// requests arrive in bursts (geometric length, exponential intra-burst
// gaps); burst boundaries are either short think times or long idle
// periods. Write locality is Zipfian, which is what gives garbage
// collection realistic invalid-page distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/random.hpp"
#include "src/workload/trace.hpp"

namespace rps::workload {

/// Weighted request-size distribution: (pages, weight) entries.
using SizeDistribution = std::vector<std::pair<std::uint32_t, double>>;

struct SyntheticConfig {
  std::string name = "custom";
  double read_fraction = 0.5;
  /// Logical pages the workload touches. Callers size this to the FTL's
  /// exported capacity (minus headroom).
  Lpn working_set_pages = 1 << 20;
  /// Zipf skew for address selection (higher = hotter hot set).
  double zipf_theta = 0.85;
  SizeDistribution size_dist{{1, 0.6}, {2, 0.3}, {4, 0.1}};

  /// Burst model.
  double mean_burst_requests = 200.0;       // geometric
  Microseconds intra_burst_gap_us = 100;    // exponential mean
  Microseconds inter_burst_gap_us = 2000;   // short think time between bursts
  double idle_probability = 0.3;            // long idle instead of think time
  Microseconds idle_mean_us = 50'000;       // exponential mean of long idles

  std::uint64_t total_requests = 100'000;
  std::uint64_t seed = 1;
};

/// The five evaluation workloads of Table 1.
enum class Preset { kOltp, kNtrx, kWebserver, kVarmail, kFileserver };

inline constexpr Preset kAllPresets[] = {Preset::kOltp, Preset::kNtrx,
                                         Preset::kWebserver, Preset::kVarmail,
                                         Preset::kFileserver};

constexpr const char* to_string(Preset preset) {
  switch (preset) {
    case Preset::kOltp: return "OLTP";
    case Preset::kNtrx: return "NTRX";
    case Preset::kWebserver: return "Webserver";
    case Preset::kVarmail: return "Varmail";
    case Preset::kFileserver: return "Fileserver";
  }
  return "?";
}

/// Build the configuration for a preset over `working_set_pages` logical
/// pages, emitting `total_requests` requests.
SyntheticConfig preset_config(Preset preset, Lpn working_set_pages,
                              std::uint64_t total_requests, std::uint64_t seed = 1);

/// Generate a trace from a configuration.
Trace generate(const SyntheticConfig& config);

/// Open-loop arrival processes for the multi-queue frontend's tenants.
/// Open-loop = arrivals are a function of time alone, never of service
/// completions: a tenant keeps submitting on its own clock whether or not
/// the device has caught up, which is what makes contention (and QoS
/// arbitration) visible.
enum class ArrivalProcess : std::uint8_t {
  kPoisson = 0,     // exponential inter-arrival gaps
  kBurstyOnOff = 1, // exponential ON/OFF periods; Poisson arrivals while ON
};

constexpr const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBurstyOnOff: return "bursty";
  }
  return "?";
}

struct OpenLoopConfig {
  std::string name = "open-loop";
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  double read_fraction = 0.5;
  /// Requests address [first_lpn, first_lpn + working_set_pages): the
  /// frontend gives each tenant a disjoint LPN partition.
  Lpn first_lpn = 0;
  Lpn working_set_pages = 1 << 16;
  double zipf_theta = 0.85;
  SizeDistribution size_dist{{1, 0.6}, {2, 0.3}, {4, 0.1}};

  /// kPoisson: mean inter-arrival gap. kBurstyOnOff: mean gap while ON.
  Microseconds mean_interarrival_us = 500;
  /// kBurstyOnOff period lengths (exponential means).
  Microseconds on_mean_us = 20'000;
  Microseconds off_mean_us = 100'000;
  /// Delay before the first arrival (lets an adversary hold fire early).
  Microseconds start_us = 0;

  std::uint64_t total_requests = 1'000;
  std::uint64_t seed = 1;
};

/// Generate an open-loop trace. Arrival timestamps are accumulated
/// *sim-time* (a running clock advanced by sampled gaps and OFF periods)
/// — never request_index x mean, which would flatten every OFF period
/// into a uniform arrival grid and starve the idle-window GC/scrub path
/// of the gaps it triggers on.
Trace generate_open_loop(const OpenLoopConfig& config);

/// A sequential full-span write pass (one request per `pages_per_request`
/// chunk, back to back). Used to precondition an FTL to steady state.
Trace sequential_fill(Lpn pages, std::uint32_t pages_per_request = 8);

}  // namespace rps::workload
