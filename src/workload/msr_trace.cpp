#include "src/workload/msr_trace.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace rps::workload {
namespace {

/// Split one CSV row; MSR traces are plain comma-separated with no quoting.
std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

template <typename T>
bool parse_number(std::string_view text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<MsrImportResult> import_msr_trace(std::istream& input,
                                         const MsrImportOptions& options) {
  if (options.page_size_bytes == 0) return ErrorCode::kInvalidArgument;
  MsrImportResult result;
  result.trace.set_name("msr-import");

  std::string line;
  bool have_base = false;
  std::uint64_t base_ticks = 0;
  while (std::getline(input, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_csv(line);
    if (fields.size() < 6) {
      ++result.skipped_rows;
      continue;
    }
    std::uint64_t ticks = 0;
    std::int32_t disk = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    if (!parse_number(fields[0], ticks) || !parse_number(fields[2], disk) ||
        !parse_number(fields[4], offset) || !parse_number(fields[5], size) ||
        size == 0) {
      ++result.skipped_rows;  // includes any header row
      continue;
    }
    const bool is_read = equals_ignore_case(fields[3], "Read");
    if (!is_read && !equals_ignore_case(fields[3], "Write")) {
      ++result.skipped_rows;
      continue;
    }
    if (options.disk_filter >= 0 && disk != options.disk_filter) continue;

    if (!have_base) {
      base_ticks = ticks;
      have_base = true;
    }
    IoRequest request;
    // Windows filetime ticks are 100 ns: 10 ticks per microsecond.
    request.arrival_us =
        static_cast<Microseconds>((ticks - std::min(ticks, base_ticks)) / 10);
    request.kind = is_read ? IoKind::kRead : IoKind::kWrite;
    const Lpn first_page = offset / options.page_size_bytes;
    const Lpn last_page = (offset + size - 1) / options.page_size_bytes;
    request.page_count = static_cast<std::uint32_t>(last_page - first_page + 1);
    request.lpn = options.wrap_span_pages > 0 ? first_page % options.wrap_span_pages
                                              : first_page;
    if (options.wrap_span_pages > 0 &&
        request.lpn + request.page_count > options.wrap_span_pages) {
      // Keep wrapped requests inside the span (clip rather than split).
      request.lpn = options.wrap_span_pages - request.page_count;
    }
    result.trace.add(request);
    if (options.max_requests > 0 && result.trace.size() >= options.max_requests) {
      break;
    }
  }
  result.trace.sort_by_arrival();
  return result;
}

Result<MsrImportResult> import_msr_trace_file(const std::string& path,
                                              const MsrImportOptions& options) {
  std::ifstream input(path);
  if (!input) return ErrorCode::kNotFound;
  return import_msr_trace(input, options);
}

}  // namespace rps::workload
