// A trace: an arrival-ordered request stream plus derived statistics
// (Table 1's read:write ratio and I/O intensiveness) and text-file I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.hpp"
#include "src/workload/request.hpp"

namespace rps::workload {

/// Derived characteristics of a trace, mirroring Table 1.
struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t read_pages = 0;
  std::uint64_t write_pages = 0;
  Microseconds duration_us = 0;
  Microseconds mean_interarrival_us = 0;
  /// Fraction of the timeline covered by gaps longer than the idle
  /// threshold — "large idle times" in the paper's workload descriptions.
  double idle_fraction = 0.0;
  Microseconds idle_threshold_us = 0;

  [[nodiscard]] double read_fraction() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(read_requests) /
                               static_cast<double>(requests);
  }
  /// Requests per second over the whole trace.
  [[nodiscard]] double iops() const {
    return duration_us <= 0 ? 0.0
                            : static_cast<double>(requests) * 1e6 /
                                  static_cast<double>(duration_us);
  }
  /// Table 1's qualitative intensiveness bucket.
  [[nodiscard]] std::string intensiveness() const;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add(IoRequest request) { requests_.push_back(request); }
  void reserve(std::size_t n) { requests_.reserve(n); }

  [[nodiscard]] const std::vector<IoRequest>& requests() const { return requests_; }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }

  /// Sort by arrival time (stable, preserves issue order at equal times).
  void sort_by_arrival();

  /// True iff arrivals are non-decreasing.
  [[nodiscard]] bool is_sorted() const;

  /// Largest LPN touched plus one (the address-space size this trace needs).
  [[nodiscard]] Lpn lpn_span() const;

  [[nodiscard]] TraceStats stats(Microseconds idle_threshold_us = 1000) const;

  /// Plain-text serialization: one "<arrival_us> <R|W> <lpn> <pages>" line
  /// per request.
  Status save(const std::string& path) const;
  static Result<Trace> load(const std::string& path);

 private:
  std::string name_;
  std::vector<IoRequest> requests_;
};

}  // namespace rps::workload
