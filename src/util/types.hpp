// Core scalar types shared by every flexnand module.
//
// Simulated time is kept in integral microseconds so that event ordering is
// exact and reproducible across platforms; all latency constants in the
// paper (500 us LSB program, 2000 us MSB program, 40 us read) are integral
// in this unit anyway.
#pragma once

#include <cstdint>
#include <limits>

namespace rps {

/// Simulated time / duration in microseconds.
using Microseconds = std::int64_t;

inline constexpr Microseconds kMicrosecondsPerSecond = 1'000'000;
inline constexpr Microseconds kMicrosecondsPerMillisecond = 1'000;

/// A sentinel for "never" when tracking deadlines / busy-until times.
inline constexpr Microseconds kTimeNever = std::numeric_limits<Microseconds>::max();

/// Logical page number — the address space an FTL exposes upward.
using Lpn = std::uint64_t;

inline constexpr Lpn kInvalidLpn = std::numeric_limits<Lpn>::max();

/// Convert a byte count and a duration to MB/s (decimal megabytes).
constexpr double bytes_per_us_to_mbps(double bytes, double us) {
  return us <= 0.0 ? 0.0 : (bytes / us) * (1e6 / 1e6);  // bytes/us == MB/s
}

}  // namespace rps
