// Byte-level serialization primitives for device/FTL snapshots.
//
// The encoding is deliberately boring: fixed little-endian integers,
// doubles as their IEEE-754 bit patterns, length-prefixed byte strings.
// No varints, no alignment, no endianness detection — the canonical byte
// stream must be identical on every platform because Snapshot::digest()
// hashes it and tests pin those digests. Anything order-sensitive
// (unordered_map contents) is the *caller's* job to canonicalize (sort by
// key) before writing.
//
// Reader never throws: an underflow or explicit fail() poisons the stream
// (all further reads return zeros) and the caller checks ok() once at the
// top level. That keeps per-field load code branch-free.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace rps::ser {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& data)
      : Reader(data.data(), data.size()) {}

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }

  void bytes(void* out, std::size_t n) {
    if (!take(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::string str() {
    const std::uint64_t n = u64();
    if (!take(static_cast<std::size_t>(n))) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Poison the stream: a shape/invariant mismatch was detected. All
  /// subsequent reads return zeros; the top-level caller rejects the load.
  void fail() { ok_ = false; }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a over a byte range — the digest primitive every determinism check
/// in this repo uses (faultsim replay, bench_simcore matrix, snapshots).
[[nodiscard]] inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                                         std::uint64_t h = 0xcbf29ce484222325ull) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a(const std::vector<std::uint8_t>& data,
                                         std::uint64_t h = 0xcbf29ce484222325ull) {
  return fnv1a(data.data(), data.size(), h);
}

}  // namespace rps::ser
