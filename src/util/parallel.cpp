#include "src/util/parallel.hpp"

namespace rps::util {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 finalizer over a golden-ratio walk from the base seed. The
  // +1 keeps index 0 from collapsing onto the raw base.
  std::uint64_t x = base + 0x9e3779b97f4a7c15ull * (index + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ThreadPool::ThreadPool(std::uint32_t threads) {
  if (threads <= 1) return;  // inline mode: no workers, no synchronization
  workers_.reserve(threads - 1);
  for (std::uint32_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    work_on_current_job();
  }
}

void ThreadPool::work_on_current_job() {
  while (true) {
    std::size_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (body_ == nullptr || next_ >= n_) return;
      index = next_++;
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      (*body_)(index);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !first_error_) {
      first_error_ = error;
      next_ = n_;  // abandon unclaimed indices
    }
    --in_flight_;
    if (next_ >= n_ && in_flight_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for_indexed(std::size_t n,
                                      const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    n_ = n;
    next_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  job_cv_.notify_all();
  work_on_current_job();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return next_ >= n_ && in_flight_ == 0; });
    body_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for_indexed(std::size_t n, std::uint32_t jobs,
                          const std::function<void(std::size_t)>& body) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(jobs);
  pool.parallel_for_indexed(n, body);
}

}  // namespace rps::util
