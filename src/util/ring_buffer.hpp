// Power-of-two ring buffer: the FIFO primitive of the allocation-free hot
// path (controller op queues, BlockManager free lists).
//
// std::deque's segmented storage allocates and frees 512-byte map nodes as
// a queue cycles, so a steady-state submit/retire loop keeps touching the
// allocator. A ring buffer reaches a high-water capacity once and then
// recycles it forever: push/pop are an index mask each, and iteration is
// front-to-back over at most two contiguous spans. Capacity grows by
// doubling (amortized O(1)); it never shrinks — steady state is the point.
//
// Order-preserving middle erase (erase_at) is provided for the rare slow
// paths (block retirement pulls a specific entry out of a free list); it is
// O(n) by design and keeps FIFO order identical to the deque it replaces.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rps {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (count_ == data_.size()) grow();
    T& slot = data_[(head_ + count_) & mask_];
    slot = T(std::forward<Args>(args)...);
    ++count_;
    return slot;
  }

  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  [[nodiscard]] T& front() {
    assert(count_ > 0);
    return data_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(count_ > 0);
    return data_[head_];
  }
  [[nodiscard]] T& back() {
    assert(count_ > 0);
    return data_[(head_ + count_ - 1) & mask_];
  }
  [[nodiscard]] const T& back() const {
    assert(count_ > 0);
    return data_[(head_ + count_ - 1) & mask_];
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < count_);
    return data_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < count_);
    return data_[(head_ + i) & mask_];
  }

  /// Drop all elements; storage (the steady-state high-water mark) is kept.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Remove the element at logical index `i`, preserving FIFO order of the
  /// rest (slow path: O(n) shift toward the back).
  void erase_at(std::size_t i) {
    assert(i < count_);
    for (std::size_t j = i; j + 1 < count_; ++j) {
      data_[(head_ + j) & mask_] = std::move(data_[(head_ + j + 1) & mask_]);
    }
    --count_;
  }

  /// First logical index holding `value`, or size() when absent.
  [[nodiscard]] std::size_t find(const T& value) const {
    for (std::size_t i = 0; i < count_; ++i) {
      if (data_[(head_ + i) & mask_] == value) return i;
    }
    return count_;
  }

  /// Pre-size the storage to at least `n` slots (rounded up to a power of
  /// two) so the first `n` pushes touch no allocator.
  void reserve(std::size_t n) {
    if (n <= data_.size()) return;
    std::size_t cap = data_.empty() ? kInitialCapacity : data_.size();
    while (cap < n) cap *= 2;
    rebase(cap);
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  void grow() { rebase(data_.empty() ? kInitialCapacity : data_.size() * 2); }

  void rebase(std::size_t cap) {
    std::vector<T> fresh(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      fresh[i] = std::move(data_[(head_ + i) & mask_]);
    }
    data_ = std::move(fresh);
    head_ = 0;
    mask_ = data_.size() - 1;
  }

  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace rps
