#include "src/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace rps {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double StreamingStats::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void SampleSet::clear() {
  samples_.clear();
  sorted_ = true;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

BoxPlot SampleSet::box_plot() const {
  BoxPlot box;
  if (samples_.empty()) return box;
  box.min = percentile(0.0);
  box.q1 = percentile(25.0);
  box.median = percentile(50.0);
  box.q3 = percentile(75.0);
  box.max = percentile(100.0);
  box.mean = mean();
  box.count = samples_.size();
  return box;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    curve.emplace_back(x, cdf_at(x));
  }
  return curve;
}

const std::vector<double>& SampleSet::sorted() const {
  ensure_sorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::int64_t>((x - lo_) / span *
                                       static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::to_ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bin_low(i) << ", " << bin_high(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace rps
