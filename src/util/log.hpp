// Minimal leveled logger. The simulation core never logs on hot paths;
// logging exists for examples, benches and debugging FTL behaviour.
#pragma once

#include <sstream>
#include <string>

namespace rps {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

#define RPS_LOG(level, expr)                                        \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::rps::log_level())) { \
      std::ostringstream rps_log_stream_;                           \
      rps_log_stream_ << expr;                                      \
      ::rps::detail::log_emit(level, rps_log_stream_.str());        \
    }                                                               \
  } while (0)

#define RPS_DEBUG(expr) RPS_LOG(::rps::LogLevel::kDebug, expr)
#define RPS_INFO(expr) RPS_LOG(::rps::LogLevel::kInfo, expr)
#define RPS_WARN(expr) RPS_LOG(::rps::LogLevel::kWarn, expr)
#define RPS_ERROR(expr) RPS_LOG(::rps::LogLevel::kError, expr)

}  // namespace rps
