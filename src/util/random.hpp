// Deterministic pseudo-random sources for simulation and workload synthesis.
//
// A self-contained xoshiro256** engine is used instead of std::mt19937 so
// that traces and Monte-Carlo results are bit-reproducible across standard
// library implementations (libstdc++/libc++ differ in distribution code, so
// the distributions are implemented here too).
#pragma once

#include <cstdint>
#include <vector>

namespace rps {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's method. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Standard normal via Box-Muller (cached spare value).
  double normal();
  double normal(double mean, double stddev);

  /// Exponential with the given mean (not rate).
  double exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Zipfian sampler over [0, n) with parameter theta in (0, 1).
///
/// Uses the Gray et al. computation (as popularized by YCSB) so that
/// sampling is O(1) after O(n)-free setup.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace rps
