// Allocation-counting interposer for the zero-allocation hot-path gate.
//
// A translation unit (alloc_audit.cpp) replaces the global operator
// new/delete family with malloc/free wrappers that bump atomic counters
// while the audit is armed. The replacement is link-time: only binaries
// that link the rps_alloc_audit library pay for it (one relaxed atomic
// load per allocation when disarmed) — the simulator libraries and every
// other binary keep the stock allocator.
//
// Intended use (bench_simcore --alloc-audit): warm a simulator to steady
// state, arm around the steady-state replay window, and assert the count
// stayed zero — the machine-checked form of "the hot path performs no
// heap allocation once its arenas are warm".
#pragma once

#include <cstdint>

namespace rps::util {

struct AllocAuditStats {
  std::uint64_t allocations = 0;  // operator new calls while armed
  std::uint64_t bytes = 0;        // sum of requested sizes while armed
  std::uint64_t frees = 0;        // operator delete calls while armed
};

/// Start counting. Counters reset to zero on each arm.
void alloc_audit_arm();

/// Stop counting and return what happened since the matching arm().
AllocAuditStats alloc_audit_disarm();

/// True when the interposing operator new/delete definitions are linked
/// into this binary (i.e. the counters can actually observe anything).
[[nodiscard]] bool alloc_audit_linked();

}  // namespace rps::util
