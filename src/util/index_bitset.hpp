// Dense fixed-universe index set over packed 64-bit words.
//
// The active-queue sets of the arbiter and the multi-queue frontend need
// membership flips in O(1) and "first member at or after position i,
// cyclically" in O(n/64) — against universes of at most a few thousand
// tenants that is a handful of word reads, so a scan over packed words
// beats a linked structure on both locality and simplicity. All
// operations are allocation-free after construction/resize.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace rps::util {

class IndexBitSet {
 public:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  IndexBitSet() = default;
  explicit IndexBitSet(std::uint32_t universe) { resize(universe); }

  /// Reset to an empty set over [0, universe).
  void resize(std::uint32_t universe) {
    universe_ = universe;
    words_.assign((universe + 63) / 64, 0);
    count_ = 0;
  }

  [[nodiscard]] std::uint32_t universe() const { return universe_; }
  [[nodiscard]] std::uint32_t count() const { return count_; }
  [[nodiscard]] bool any() const { return count_ != 0; }

  [[nodiscard]] bool test(std::uint32_t i) const {
    assert(i < universe_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::uint32_t i) {
    assert(i < universe_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ += (w & bit) == 0;
    w |= bit;
  }

  void clear(std::uint32_t i) {
    assert(i < universe_);
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ -= (w & bit) != 0;
    w &= ~bit;
  }

  /// First member >= `from`, or kNpos when there is none.
  [[nodiscard]] std::uint32_t next(std::uint32_t from) const {
    if (from >= universe_) return kNpos;
    std::uint32_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        return (wi << 6) + static_cast<std::uint32_t>(std::countr_zero(w));
      }
      if (++wi == words_.size()) return kNpos;
      w = words_[wi];
    }
  }

  /// First member at or after `from` in cyclic order (wrapping to 0).
  /// Precondition: the set is non-empty.
  [[nodiscard]] std::uint32_t next_cyclic(std::uint32_t from) const {
    assert(any());
    const std::uint32_t hit = next(from);
    if (hit != kNpos) return hit;
    const std::uint32_t wrapped = next(0);
    assert(wrapped != kNpos);
    return wrapped;
  }

  /// Visit every member in ascending order. `f` must not mutate the set.
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
        f((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t universe_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace rps::util
