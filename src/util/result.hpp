// Lightweight status / result types used on device and FTL hot paths.
//
// flexnand avoids exceptions in the simulation core: a program-sequence
// violation is an *observable outcome* that tests assert on, not a crash.
#pragma once

#include <cassert>
#include <optional>
#include <string_view>
#include <utility>

namespace rps {

/// Error codes produced by the NAND device model and the FTL layers.
enum class ErrorCode {
  kOk = 0,
  kSequenceViolation,   // program order violates the active policy
  kAlreadyProgrammed,   // page was programmed before the enclosing erase
  kNotErased,           // erase/program target in an unexpected state
  kOutOfRange,          // address outside the device geometry
  kEccUncorrectable,    // read failed: data destroyed (e.g. power loss)
  kNotProgrammed,       // read of a never-written page
  kNoFreeBlock,         // block allocation failed (GC could not keep up)
  kNoFreePage,          // active block exhausted
  kBufferFull,          // write buffer rejected a request
  kNotFound,            // mapping lookup miss
  kInvalidArgument,
  kPowerLoss,           // operation interrupted by an injected power loss
  kBlockBad,            // block failed (worn out / program failure), no spare left
};

/// Human-readable name for an ErrorCode (for logs and test failure output).
constexpr std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kSequenceViolation: return "SequenceViolation";
    case ErrorCode::kAlreadyProgrammed: return "AlreadyProgrammed";
    case ErrorCode::kNotErased: return "NotErased";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kEccUncorrectable: return "EccUncorrectable";
    case ErrorCode::kNotProgrammed: return "NotProgrammed";
    case ErrorCode::kNoFreeBlock: return "NoFreeBlock";
    case ErrorCode::kNoFreePage: return "NoFreePage";
    case ErrorCode::kBufferFull: return "BufferFull";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kPowerLoss: return "PowerLoss";
    case ErrorCode::kBlockBad: return "BlockBad";
  }
  return "Unknown";
}

/// A success/failure status without a payload.
class Status {
 public:
  constexpr Status() : code_(ErrorCode::kOk) {}
  constexpr explicit Status(ErrorCode code) : code_(code) {}

  static constexpr Status ok() { return Status{}; }

  [[nodiscard]] constexpr bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] constexpr ErrorCode code() const { return code_; }
  [[nodiscard]] constexpr std::string_view message() const { return to_string(code_); }

  constexpr explicit operator bool() const { return is_ok(); }
  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_;
};

/// A value-or-error result. Minimal by design (no monadic chains needed).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), code_(ErrorCode::kOk) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode code) : code_(code) { assert(code != ErrorCode::kOk); }  // NOLINT

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  explicit operator bool() const { return is_ok(); }

  /// Precondition: is_ok().
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  ErrorCode code_;
};

}  // namespace rps
