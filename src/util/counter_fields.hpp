// Single source of truth for the repo's counter families.
//
// Every counter struct that participates in snapshot/delta/report flows
// declares its fields through one of these X-macro lists, and every
// consumer (struct declaration, obs::Registry::delta, FtlBase
// serialization, the metrics-report emitter) expands the same list — so
// adding a counter automatically adds it everywhere, and a field can no
// longer be silently dropped from delta() (the exact bug PR 4 once fixed
// by hand for remapped/retired/coalesced counters).
//
// Usage:
//   #define F(name) std::uint64_t name = 0;
//   RPS_FTL_STAT_FIELDS(F)
//   #undef F
//
// Field order is ABI: serialization streams fields in list order, so
// append new fields at the end and bump sim::Snapshot::kVersion.
#pragma once

/// nand::OpCounters — per-chip/device media op totals.
#define RPS_OP_COUNTER_FIELDS(X) \
  X(reads)                       \
  X(lsb_programs)                \
  X(msb_programs)                \
  X(erases)

/// ftl::FtlStats — FTL-level accounting:
///   host_write_pages/host_read_pages  host ops served
///   host_lsb_writes/host_msb_writes   host writes by landing page type
///   gc_copy_pages                     pages relocated by GC
///   backup_pages                      parity / paired-page backup writes
///   foreground_gc_blocks/background_gc_blocks  blocks reclaimed by mode
///   unmapped_reads                    zero-fill reads of unwritten LPNs
///   read_errors                       ECC-uncorrectable host reads
///   scrubbed_blocks                   read-disturb refreshes
///   remapped_blocks                   grown-bad blocks redirected to spares
///   retired_blocks                    blocks permanently lost (no spare)
///   coalesced_erases                  sibling-plane blocks erased with a victim
#define RPS_FTL_STAT_FIELDS(X) \
  X(host_write_pages)          \
  X(host_read_pages)           \
  X(host_lsb_writes)           \
  X(host_msb_writes)           \
  X(gc_copy_pages)             \
  X(backup_pages)              \
  X(foreground_gc_blocks)      \
  X(background_gc_blocks)      \
  X(unmapped_reads)            \
  X(read_errors)               \
  X(scrubbed_blocks)           \
  X(remapped_blocks)           \
  X(retired_blocks)            \
  X(coalesced_erases)
