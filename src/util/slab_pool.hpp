// Recycling slab pool with power-of-two size classes.
//
// acquire(n) hands out a block of capacity 2^ceil(log2(n)) items from the
// matching size class's freelist, touching the allocator only when the
// freelist is dry; release(p, n) returns the block to its class. After
// warm-up a steady-state acquire/release cycle is allocation-free: the
// pool's high-water population of each class circulates forever. Blocks
// are never returned to the system until the pool is destroyed.
//
// The controller uses this for per-command op-state batches: commands of
// similar page counts share size classes, so the submit→retire cycle of a
// long run recycles a handful of slabs instead of hitting the heap per
// command.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <vector>

namespace rps {

template <typename T>
class SlabPool {
 public:
  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (auto& list : free_) {
      for (T* slab : list) delete[] slab;
    }
  }

  /// A block holding at least `n` items (capacity 2^size_class(n)).
  /// Contents are unspecified — recycled slabs keep their old values;
  /// callers initialize what they use.
  [[nodiscard]] T* acquire(std::size_t n) {
    auto& list = free_[size_class(n)];
    if (!list.empty()) {
      T* slab = list.back();
      list.pop_back();
      return slab;
    }
    return new T[std::size_t{1} << size_class(n)];
  }

  /// Bank free blocks until `n`'s size class holds at least `count`, so
  /// the first `count` concurrent acquires of the class never allocate.
  /// (Blocks already circulating through acquire/release also count
  /// toward a class's population, so prefill after warm-up over-reserves
  /// at worst.)
  void prefill(std::size_t n, std::size_t count) {
    auto& list = free_[size_class(n)];
    list.reserve(count);
    while (list.size() < count) {
      list.push_back(new T[std::size_t{1} << size_class(n)]);
    }
  }

  /// Return a block acquired with the same `n` (or any n in the same size
  /// class) to its freelist.
  void release(T* slab, std::size_t n) {
    assert(slab != nullptr);
    free_[size_class(n)].push_back(slab);
  }

  /// Index of the smallest power-of-two class holding `n` items.
  [[nodiscard]] static std::size_t size_class(std::size_t n) {
    std::size_t cls = 0;
    while ((std::size_t{1} << cls) < n) ++cls;
    assert(cls < kClasses);
    return cls;
  }

 private:
  static constexpr std::size_t kClasses = 32;  // up to 2^31 items per slab

  std::array<std::vector<T*>, kClasses> free_;
};

}  // namespace rps
