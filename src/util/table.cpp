#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace rps {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TablePrinter::fmt_int(std::int64_t value) {
  return std::to_string(value);
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace rps
