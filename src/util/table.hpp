// Console table rendering for benchmark harnesses: every figure/table
// reproduction prints an aligned, paper-style table plus an optional CSV
// dump for plotting.
#pragma once

#include <string>
#include <vector>

namespace rps {

/// A simple right-padded text table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_int(std::int64_t value);

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated dump (header + rows).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rps
