// Node recycling for node-based maps on allocation-free hot paths.
//
// std::unordered_map allocates one node per insert and frees it per
// erase — steady-state churn that breaks the zero-allocation gate even
// when the map's *population* is in equilibrium. These helpers keep a
// side stack of extracted node handles: erases bank their node instead
// of freeing it, inserts drain the bank instead of allocating. Once the
// bank covers the working set's churn amplitude, the insert/erase cycle
// never touches the heap (bucket arrays still need a prior reserve()).
//
// Map semantics are untouched — the same nodes, keys and values end up
// in the same buckets — so serialization and iteration behavior are
// byte-for-byte what the plain map produces.
#pragma once

#include <utility>
#include <vector>

namespace rps::util {

/// map[key] = value, reusing a banked node when one is available.
template <typename Map>
void recycled_assign(Map& map, std::vector<typename Map::node_type>& spares,
                     const typename Map::key_type& key,
                     typename Map::mapped_type value) {
  if (spares.empty()) {
    map[key] = std::move(value);
    return;
  }
  typename Map::node_type node = std::move(spares.back());
  spares.pop_back();
  node.key() = key;
  node.mapped() = std::move(value);
  auto res = map.insert(std::move(node));
  if (!res.inserted) {
    // Key already present: refresh in place, bank the spare again.
    res.position->second = std::move(res.node.mapped());
    spares.push_back(std::move(res.node));
  }
}

/// map.erase(it), banking the node instead of freeing it.
template <typename Map>
void recycled_erase(Map& map, std::vector<typename Map::node_type>& spares,
                    typename Map::iterator it) {
  spares.push_back(map.extract(it));
}

}  // namespace rps::util
