// Deterministic parallel trial runner.
//
// Every large experiment in this repo — faultsim sweeps, the Fig. 8
// reproductions, reliability sweeps — is a set of *independent* trials:
// each trial builds its own FTL/device/workload from a config and shares
// no mutable state with its siblings. ThreadPool::parallel_for_indexed
// runs such a set `jobs`-wide while keeping the output bit-identical to
// the sequential run for ANY thread count:
//
//   - the body for index i writes only into caller-owned slot i (results
//     are merged in submission-index order, never completion order),
//   - work is claimed dynamically from an atomic counter (load balance),
//     which affects only *when* an index runs, not what it computes,
//   - per-trial randomness derives from derive_seed(base, index), a pure
//     function of the submission index — never of thread identity or time.
//
// With jobs <= 1 (or n <= 1) the body runs inline on the calling thread,
// so `--jobs 1` is exactly the pre-pool sequential path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rps::util {

/// Statistically independent per-trial seed stream: splitmix64 finalizer
/// over (base, index). Pure function of its inputs — the same trial index
/// sees the same seed at any thread count, which is what makes parallel
/// sweeps replayable from a single (base seed, index) pair.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

/// A small fixed-size worker pool. One pool can serve many consecutive
/// parallel_for_indexed calls (each call is a barrier: it returns only
/// after every index's body has completed).
class ThreadPool {
 public:
  /// `threads` = total concurrency including the calling thread: the pool
  /// spawns threads-1 workers (0 or 1 spawns none — pure inline mode).
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Run body(i) for every i in [0, n). The calling thread participates.
  /// Blocks until all n indices completed. If any body throws, the first
  /// exception (in claim order) is rethrown here after the barrier; the
  /// remaining indices are abandoned.
  void parallel_for_indexed(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Total concurrency (workers + calling thread); >= 1.
  [[nodiscard]] std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(workers_.size()) + 1;
  }

 private:
  void worker_loop();
  /// Claim and run indices of the current job until exhausted. Returns
  /// once next_ >= n_ (or a sibling aborted the job).
  void work_on_current_job();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   // workers wait for a new job / stop
  std::condition_variable done_cv_;  // caller waits for completion
  std::uint64_t generation_ = 0;     // bumped per parallel_for call
  bool stop_ = false;

  // Current job (valid while body_ != nullptr).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t next_ = 0;       // next unclaimed index (guarded by mutex_)
  std::size_t in_flight_ = 0;  // claimed indices whose body has not returned
  std::exception_ptr first_error_;
};

/// Convenience: run body(i) for i in [0, n) with `jobs` total threads.
/// jobs <= 1 runs inline with zero threading overhead.
void parallel_for_indexed(std::size_t n, std::uint32_t jobs,
                          const std::function<void(std::size_t)>& body);

}  // namespace rps::util
