#include "src/util/alloc_audit.hpp"

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace rps::util {
namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};
bool g_linked = false;

// Set at static-init time by this TU; alloc_audit_linked() reads it so a
// caller can tell "zero allocations" apart from "interposer not linked".
struct LinkMarker {
  LinkMarker() { g_linked = true; }
} g_link_marker;

// With RPS_ALLOC_AUDIT_BACKTRACE=N in the environment, the first N armed
// allocations print a symbolized backtrace to stderr — the way to find
// what broke the zero-allocation gate. Off by default (backtrace() itself
// allocates on first use, so the printout self-reports too).
int backtrace_budget() {
  static const int budget = [] {
    const char* v = std::getenv("RPS_ALLOC_AUDIT_BACKTRACE");
    return v == nullptr ? 0 : std::atoi(v);
  }();
  return budget;
}

void maybe_print_backtrace(std::size_t size) {
#if defined(__GLIBC__)
  static thread_local bool in_hook = false;
  static std::atomic<int> printed{0};
  if (in_hook || backtrace_budget() == 0) return;
  if (printed.fetch_add(1, std::memory_order_relaxed) >= backtrace_budget()) return;
  in_hook = true;
  std::fprintf(stderr, "alloc-audit: armed allocation of %zu bytes at:\n", size);
  void* frames[32];
  const int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, 2);
  in_hook = false;
#else
  (void)size;
#endif
}

void* audited_alloc(std::size_t size, std::size_t alignment) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    maybe_print_backtrace(size);
  }
  void* p = nullptr;
  if (alignment > alignof(std::max_align_t)) {
    if (posix_memalign(&p, alignment, size == 0 ? alignment : size) != 0) {
      p = nullptr;
    }
  } else {
    p = std::malloc(size == 0 ? 1 : size);
  }
  return p;
}

void audited_free(void* p) noexcept {
  if (p != nullptr && g_armed.load(std::memory_order_relaxed)) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
  }
  std::free(p);
}

}  // namespace

void alloc_audit_arm() {
  g_allocations.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

AllocAuditStats alloc_audit_disarm() {
  g_armed.store(false, std::memory_order_relaxed);
  AllocAuditStats stats;
  stats.allocations = g_allocations.load(std::memory_order_relaxed);
  stats.bytes = g_bytes.load(std::memory_order_relaxed);
  stats.frees = g_frees.load(std::memory_order_relaxed);
  return stats;
}

bool alloc_audit_linked() { return g_linked; }

}  // namespace rps::util

// Global replacement allocator. Defining any of these in a linked TU
// replaces the toolchain's definitions binary-wide (ISO C++ replaceable
// allocation functions), which is exactly the interposition we want —
// and only binaries linking rps_alloc_audit get it.

void* operator new(std::size_t size) {
  void* p = rps::util::audited_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = rps::util::audited_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = rps::util::audited_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = rps::util::audited_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return rps::util::audited_alloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return rps::util::audited_alloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return rps::util::audited_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return rps::util::audited_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { rps::util::audited_free(p); }
void operator delete[](void* p) noexcept { rps::util::audited_free(p); }
void operator delete(void* p, std::size_t) noexcept { rps::util::audited_free(p); }
void operator delete[](void* p, std::size_t) noexcept { rps::util::audited_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { rps::util::audited_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { rps::util::audited_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  rps::util::audited_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  rps::util::audited_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  rps::util::audited_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  rps::util::audited_free(p);
}
