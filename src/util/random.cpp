#include "src/util/random.hpp"

#include <cassert>
#include <cmath>

namespace rps {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  auto wide = static_cast<unsigned __int128>(next_u64()) * bound;
  auto low = static_cast<std::uint64_t>(wide);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      wide = static_cast<unsigned __int128>(next_u64()) * bound;
      low = static_cast<std::uint64_t>(wide);
    }
  }
  return static_cast<std::uint64_t>(wide >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace rps
