// Statistics helpers used by the reliability study, the simulator metrics
// and every benchmark harness: streaming moments, percentile extraction,
// five-number box-plot summaries (Fig. 4a) and empirical CDFs (Fig. 8c).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rps {

/// Streaming mean/variance/min/max (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary plus mean, matching the paper's box plots (Fig. 4a).
struct BoxPlot {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Sample container with percentile/box-plot/CDF extraction.
///
/// Samples are stored and sorted lazily on the first query after an insert.
class SampleSet {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear();

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Linear-interpolated percentile; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double min() const { return percentile(0.0); }
  [[nodiscard]] double max() const { return percentile(100.0); }
  [[nodiscard]] double mean() const;

  [[nodiscard]] BoxPlot box_plot() const;

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// `points` evenly spaced (x, F(x)) pairs spanning [min, max].
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(std::size_t points) const;

  [[nodiscard]] const std::vector<double>& sorted() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render an ASCII bar chart (used by bench harness output).
  [[nodiscard]] std::string to_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rps
