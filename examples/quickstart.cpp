// Quickstart: build a flexFTL-managed MLC NAND storage system, write and
// read data, and inspect what the RPS scheme did under the hood.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "src/core/flex_ftl.hpp"

using namespace rps;

int main() {
  // A small 2-channel x 2-chip MLC device. flexFTL programs it under the
  // relaxed program sequence (constraints 1-3 only).
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.wordlines_per_block = 16;  // 32 pages per block
  core::FlexFtl ftl(config);

  std::printf("Device: %u chips x %u blocks x %u pages (%s sequence)\n",
              config.geometry.num_chips(), config.geometry.blocks_per_chip,
              config.geometry.pages_per_block(),
              nand::to_string(ftl.device().sequence_kind()));
  std::printf("Exported capacity: %llu logical pages\n\n",
              static_cast<unsigned long long>(ftl.exported_pages()));

  // Write a few pages with real payloads. The third argument is the
  // current time; the fourth is the write-buffer utilization the policy
  // manager uses to pick LSB vs MSB pages (0.9 = burst in progress).
  Microseconds now = 0;
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    const std::string text = "hello page " + std::to_string(lpn);
    const Result<ftl::HostOp> op = ftl.write_data(
        lpn, std::vector<std::uint8_t>(text.begin(), text.end()), now,
        /*buffer_utilization=*/0.9);
    if (!op.is_ok()) {
      std::printf("write %llu failed: %s\n", static_cast<unsigned long long>(lpn),
                  std::string(to_string(op.code())).c_str());
      return 1;
    }
    std::printf("wrote lpn %llu, durable at t=%lld us\n",
                static_cast<unsigned long long>(lpn),
                static_cast<long long>(op.value().complete));
    now = op.value().complete;
  }

  // Read one back and verify the payload survived the FTL's placement.
  const Result<nand::PageData> data = ftl.read_data(3, now);
  if (data.is_ok()) {
    const std::string text(data.value().bytes.begin(), data.value().bytes.end());
    std::printf("\nread lpn 3 -> \"%s\"\n", text.c_str());
  }

  // What happened at the device level: a burst at high buffer utilization
  // is served entirely with fast LSB pages (the 2PO fast phase).
  const ftl::FtlStats& stats = ftl.stats();
  std::printf("\nhost writes: %llu (LSB %llu / MSB %llu), quota q = %lld\n",
              static_cast<unsigned long long>(stats.host_write_pages),
              static_cast<unsigned long long>(stats.host_lsb_writes),
              static_cast<unsigned long long>(stats.host_msb_writes),
              static_cast<long long>(ftl.quota()));
  std::printf("LSB program: %lld us vs MSB program: %lld us — that asymmetry\n",
              static_cast<long long>(config.timing.program_lsb_us),
              static_cast<long long>(config.timing.program_msb_us));
  std::printf("is what flexFTL exploits. An FPS FTL would have alternated.\n");
  return 0;
}
