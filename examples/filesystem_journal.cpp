// Drive the host block-device layer with a journaling-filesystem-shaped
// pattern: small unaligned metadata commits into a circular journal,
// full-page data writes, periodic checkpoints that TRIM the journal tail.
// Shows the sector interface, read-modify-write accounting, and how
// flexFTL's fast phase absorbs the fsync-heavy journal traffic.
//
//   $ ./filesystem_journal
#include <cstdio>

#include "src/core/flex_ftl.hpp"
#include "src/host/block_device.hpp"
#include "src/util/random.hpp"

using namespace rps;

int main() {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.wordlines_per_block = 16;
  config.geometry.blocks_per_chip = 32;
  config.geometry.page_size_bytes = 4096;
  core::FlexFtl ftl(config);
  host::BlockDevice dev(ftl, {.sector_bytes = 512});

  std::printf("block device: %llu sectors x %u B = %.1f MiB (on flexFTL)\n\n",
              static_cast<unsigned long long>(dev.num_sectors()), dev.sector_bytes(),
              static_cast<double>(dev.capacity_bytes()) / (1 << 20));

  // Layout: journal in the first 1024 sectors, data area after it.
  const std::uint64_t journal_sectors = 1024;
  const std::uint64_t data_start = journal_sectors;
  const std::uint64_t data_sectors = dev.num_sectors() / 2;

  Rng rng(11);
  Microseconds now = 0;
  std::uint64_t journal_head = 0;
  std::uint64_t commits = 0;

  for (int txn = 0; txn < 400; ++txn) {
    // 1. Journal commit: a 1-sector metadata record (unaligned on purpose).
    std::vector<std::uint8_t> record(dev.sector_bytes(),
                                     static_cast<std::uint8_t>(txn));
    auto committed = dev.write(journal_head, record, now, /*buffer_utilization=*/0.9);
    if (!committed.is_ok()) break;
    now = committed.value();  // fsync semantics: wait for durability
    journal_head = (journal_head + 1) % journal_sectors;
    ++commits;

    // 2. Data write-back: 2-6 full pages somewhere in the data area.
    const std::uint64_t pages = 2 + rng.next_below(5);
    const std::uint64_t sectors = pages * dev.sectors_per_page();
    const std::uint64_t where =
        data_start + rng.next_below(data_sectors - sectors);
    std::vector<std::uint8_t> data(sectors * dev.sector_bytes(),
                                   static_cast<std::uint8_t>(txn * 7));
    auto written = dev.write(where - where % dev.sectors_per_page(), data, now, 0.6);
    if (!written.is_ok()) break;

    // 3. Checkpoint every 64 transactions: journal tail becomes reusable.
    if (txn % 64 == 63) {
      (void)dev.trim(0, journal_sectors);
      const Microseconds idle_from = ftl.device().all_idle_at();
      ftl.on_idle(idle_from, idle_from + 200'000);
      now = idle_from + 200'000;
    }
  }

  const host::BlockDeviceStats& stats = dev.stats();
  std::printf("transactions committed:   %llu\n",
              static_cast<unsigned long long>(commits));
  std::printf("write requests:           %llu (%llu sectors)\n",
              static_cast<unsigned long long>(stats.write_requests),
              static_cast<unsigned long long>(stats.sectors_written));
  std::printf("read-modify-write cycles: %llu (journal records share pages)\n",
              static_cast<unsigned long long>(stats.rmw_cycles));
  std::printf("host LSB / MSB writes:    %llu / %llu\n",
              static_cast<unsigned long long>(ftl.stats().host_lsb_writes),
              static_cast<unsigned long long>(ftl.stats().host_msb_writes));
  std::printf("flexFTL quota q:          %lld\n", static_cast<long long>(ftl.quota()));
  std::printf("\nfsync-bound journal commits ride the LSB fast phase (500 us each);\n");
  std::printf("checkpoint idle time repays the MSB debt in the background.\n");
  return ftl.check_consistency() ? 0 : 1;
}
