// A miniature log-structured key-value store on top of the host block
// device — the kind of enterprise workload (Section 1) the paper's
// burst-absorbing FTL is built for. PUTs append records to a log and are
// fsync-bound; the in-memory index maps keys to log positions; segment
// compaction TRIMs dead space.
//
//   $ ./kv_store
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>

#include "src/core/flex_ftl.hpp"
#include "src/host/block_device.hpp"
#include "src/util/random.hpp"

using namespace rps;

namespace {

class TinyKv {
 public:
  explicit TinyKv(host::BlockDevice& dev) : dev_(dev) {}

  Microseconds put(const std::string& key, const std::string& value,
                   Microseconds now) {
    // Record: [key_len u16][val_len u16][key][value], sector-aligned.
    std::vector<std::uint8_t> record(2 + 2 + key.size() + value.size());
    record[0] = static_cast<std::uint8_t>(key.size());
    record[1] = static_cast<std::uint8_t>(key.size() >> 8);
    record[2] = static_cast<std::uint8_t>(value.size());
    record[3] = static_cast<std::uint8_t>(value.size() >> 8);
    std::memcpy(record.data() + 4, key.data(), key.size());
    std::memcpy(record.data() + 4 + key.size(), value.data(), value.size());
    const std::uint64_t sectors =
        (record.size() + dev_.sector_bytes() - 1) / dev_.sector_bytes();
    record.resize(sectors * dev_.sector_bytes());

    if ((head_ + sectors) * 1 > dev_.num_sectors()) head_ = 0;  // wrap the log
    const auto written = dev_.write(head_, record, now, /*buffer_utilization=*/0.9);
    if (!written.is_ok()) return now;
    index_[key] = {head_, sectors};
    head_ += sectors;
    ++puts_;
    return written.value();  // fsync semantics
  }

  std::string get(const std::string& key, Microseconds now) {
    const auto it = index_.find(key);
    if (it == index_.end()) return {};
    const auto read = dev_.read(it->second.sector, it->second.sectors, now);
    if (!read.is_ok()) return {};
    const std::vector<std::uint8_t>& r = read.value().data;
    const std::size_t key_len = r[0] | (r[1] << 8);
    const std::size_t val_len = r[2] | (r[3] << 8);
    ++gets_;
    return std::string(r.begin() + 4 + static_cast<std::ptrdiff_t>(key_len),
                       r.begin() + 4 + static_cast<std::ptrdiff_t>(key_len + val_len));
  }

  [[nodiscard]] std::uint64_t puts() const { return puts_; }
  [[nodiscard]] std::uint64_t gets() const { return gets_; }

 private:
  struct Location {
    std::uint64_t sector;
    std::uint64_t sectors;
  };
  host::BlockDevice& dev_;
  std::unordered_map<std::string, Location> index_;
  std::uint64_t head_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
};

}  // namespace

int main() {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.blocks_per_chip = 64;
  config.geometry.wordlines_per_block = 16;
  config.geometry.page_size_bytes = 4096;
  core::FlexFtl ftl(config);
  host::BlockDevice dev(ftl, {.sector_bytes = 512});
  TinyKv kv(dev);

  std::printf("tiny-kv on flexFTL: %.1f MiB log device\n\n",
              static_cast<double>(dev.capacity_bytes()) / (1 << 20));

  // Session loop: bursts of PUTs (mail-delivery-like), reads in between,
  // idle gaps that let the FTL repay its MSB debt.
  Rng rng(3);
  Microseconds now = 0;
  int verified = 0;
  for (int session = 0; session < 30; ++session) {
    for (int i = 0; i < 40; ++i) {
      const std::string key = "user" + std::to_string(rng.next_below(500));
      now = kv.put(key, "value-" + key + "-" + std::to_string(session), now);
    }
    // Read-back checks.
    for (int i = 0; i < 10; ++i) {
      const std::string key = "user" + std::to_string(rng.next_below(500));
      const std::string value = kv.get(key, now);
      if (!value.empty()) {
        ++verified;
        if (value.substr(6, key.size()) != key) {
          std::printf("CORRUPTION for %s: %s\n", key.c_str(), value.c_str());
          return 1;
        }
      }
    }
    const Microseconds idle_from = ftl.device().all_idle_at();
    ftl.on_idle(idle_from, idle_from + 100'000);
    now = idle_from + 100'000;
  }

  std::printf("PUTs: %llu   GETs: %llu (%d hits verified)\n",
              static_cast<unsigned long long>(kv.puts()),
              static_cast<unsigned long long>(kv.gets()), verified);
  std::printf("host LSB/MSB writes: %llu / %llu — fsync-bound PUT bursts ride\n",
              static_cast<unsigned long long>(ftl.stats().host_lsb_writes),
              static_cast<unsigned long long>(ftl.stats().host_msb_writes));
  std::printf("the fast phase; idle sessions repay the MSB debt (quota q = %lld).\n",
              static_cast<long long>(ftl.quota()));
  return ftl.check_consistency() ? 0 : 1;
}
