// Trace tooling: generate a workload trace, save it to a file, load it
// back, and replay it against any of the four FTLs — the workflow for
// running your own traces through the simulator.
//
//   $ ./trace_replay                          # demo: generate+replay Varmail
//   $ ./trace_replay my.trace flexFTL         # replay a trace file
//
// Trace file format (plain text): one "<arrival_us> <R|W> <lpn> <pages>"
// line per request; '#'-prefixed lines are comments.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main(int argc, char** argv) {
  sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
  spec.ftl_config.geometry.blocks_per_chip = 64;

  std::string path = "/tmp/flexnand_demo.trace";
  sim::FtlKind kind = sim::FtlKind::kFlex;
  if (argc > 1) path = argv[1];
  if (argc > 2) {
    for (const sim::FtlKind k : sim::kAllFtls) {
      if (strcasecmp(argv[2], sim::to_string(k)) == 0) kind = k;
    }
  }

  if (argc <= 1) {
    // Demo mode: synthesize a Varmail trace and save it first.
    auto ftl_for_sizing = sim::make_ftl(kind, spec.ftl_config);
    const Lpn working_set =
        static_cast<Lpn>(ftl_for_sizing->exported_pages() * 0.8);
    const workload::Trace generated = workload::generate(
        workload::preset_config(workload::Preset::kVarmail, working_set, 30'000, 1));
    if (!generated.save(path).is_ok()) {
      std::printf("cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("generated %zu-request Varmail trace -> %s\n", generated.size(),
                path.c_str());
  }

  Result<workload::Trace> loaded = workload::Trace::load(path);
  if (!loaded.is_ok()) {
    std::printf("cannot load %s: %s\n", path.c_str(),
                std::string(to_string(loaded.code())).c_str());
    return 1;
  }
  const workload::Trace& trace = loaded.value();
  const workload::TraceStats stats = trace.stats();
  std::printf("loaded %zu requests (R:W %.2f:%.2f, %s intensiveness)\n",
              trace.size(), stats.read_fraction(), 1 - stats.read_fraction(),
              stats.intensiveness().c_str());

  auto ftl = sim::make_ftl(kind, spec.ftl_config);
  if (trace.lpn_span() > ftl->exported_pages()) {
    std::printf("trace touches %llu pages but the device exports %llu\n",
                static_cast<unsigned long long>(trace.lpn_span()),
                static_cast<unsigned long long>(ftl->exported_pages()));
    return 1;
  }
  sim::Simulator simulator(*ftl, spec.sim);
  std::printf("preconditioning %s...\n", std::string(ftl->name()).c_str());
  simulator.precondition();
  const sim::SimResult r = simulator.run(trace);

  TablePrinter table({"metric", "value"});
  table.add_row({"FTL", r.ftl_name});
  table.add_row({"IOPS (makespan)", TablePrinter::fmt(r.iops_makespan(), 0)});
  table.add_row({"p50 latency (us)", TablePrinter::fmt(r.latency_us.percentile(50), 0)});
  table.add_row({"p99 latency (us)", TablePrinter::fmt(r.latency_us.percentile(99), 0)});
  table.add_row({"write amplification", TablePrinter::fmt(r.waf(), 2)});
  table.add_row({"block erasures", TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases))});
  table.add_row({"peak write MB/s",
                 r.write_bw_mbps.empty()
                     ? "-"
                     : TablePrinter::fmt(r.write_bw_mbps.percentile(99.5), 1)});
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
