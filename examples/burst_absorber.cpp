// The paper's Section 1 motivation, made visible: a burst of writes
// arrives; an FPS FTL must alternate fast LSB (500 us) and slow MSB
// (2000 us) programs, while flexFTL under RPS serves the whole burst with
// LSB pages and repays the MSB debt during the following idle period.
//
//   $ ./burst_absorber
#include <cstdio>

#include "src/core/flex_ftl.hpp"
#include "src/ftl/page_ftl.hpp"

using namespace rps;

namespace {

/// Issue `pages` back-to-back writes at time `start`; returns drain time.
template <typename Ftl>
Microseconds run_burst(Ftl& ftl, Lpn first_lpn, std::uint32_t pages,
                       Microseconds start) {
  for (std::uint32_t i = 0; i < pages; ++i) {
    const auto op = ftl.write(first_lpn + i, start, /*buffer_utilization=*/0.95);
    if (!op.is_ok()) std::printf("  write failed!\n");
  }
  return ftl.device().all_idle_at() - start;
}

}  // namespace

int main() {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.wordlines_per_block = 32;
  config.geometry.blocks_per_chip = 32;

  core::FlexFtl flex(config);
  ftl::PageFtl page(config);

  std::printf("Burst absorption: 256-page write burst on %u chips\n\n",
              config.geometry.num_chips());
  std::printf("%-28s %12s %12s\n", "", "pageFTL", "flexFTL");

  Microseconds flex_t = 0;
  Microseconds page_t = 0;
  for (int round = 0; round < 4; ++round) {
    const Lpn base = static_cast<Lpn>(round) * 256;
    const Microseconds page_drain = run_burst(page, base, 256, page_t);
    const Microseconds flex_drain = run_burst(flex, base, 256, flex_t);
    std::printf("burst %d drain time (us)     %12lld %12lld\n", round,
                static_cast<long long>(page_drain), static_cast<long long>(flex_drain));

    // Idle period: both FTLs may do background work; flexFTL uses it to
    // consume MSB pages (via GC copies), restoring its LSB quota.
    page_t = page.device().all_idle_at();
    flex_t = flex.device().all_idle_at();
    page.on_idle(page_t, page_t + 500'000);
    flex.on_idle(flex_t, flex_t + 500'000);
    page_t += 500'000;
    flex_t += 500'000;
    std::printf("  after idle: flex quota q = %lld, SBQueue depth(chip0) = %zu\n",
                static_cast<long long>(flex.quota()), flex.sbqueue_depth(0));
  }

  const auto& ps = page.stats();
  const auto& fs = flex.stats();
  std::printf("\nhost writes served by LSB pages: pageFTL %llu/%llu, flexFTL %llu/%llu\n",
              static_cast<unsigned long long>(ps.host_lsb_writes),
              static_cast<unsigned long long>(ps.host_write_pages),
              static_cast<unsigned long long>(fs.host_lsb_writes),
              static_cast<unsigned long long>(fs.host_write_pages));
  std::printf("\nflexFTL drains each burst roughly (500+2000)/2 / 500 = 2.5x faster;\n");
  std::printf("the deferred MSB work happens in idle time, invisible to the host.\n");
  return 0;
}
