// The paired-page problem, end to end (paper Sections 1 and 3.3):
//
//  1. fill a block's LSB pages with acknowledged user data,
//  2. cut power in the middle of an MSB program — the destructive MSB
//     program wipes out the paired LSB page's old data,
//  3. run flexFTL's recovery: re-read the slow block's LSB pages,
//     reconstruct the lost page from the per-block XOR parity page, and
//     remap it to a fresh location.
//
//   $ ./power_failure_recovery
#include <cstdio>
#include <string>

#include "src/core/flex_ftl.hpp"

using namespace rps;

namespace {

std::vector<std::uint8_t> payload(const std::string& text) {
  return {text.begin(), text.end()};
}

std::string text_of(const nand::PageData& data) {
  return {data.bytes.begin(), data.bytes.end()};
}

}  // namespace

int main() {
  ftl::FtlConfig config = ftl::FtlConfig::tiny();
  config.geometry.channels = 1;
  config.geometry.chips_per_channel = 1;
  config.geometry.wordlines_per_block = 8;
  core::FlexFtl ftl(config);

  std::printf("=== 1. Fast phase: fill a block's LSB pages ===\n");
  Microseconds now = 0;
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    const auto op = ftl.write_data(lpn, payload("mail #" + std::to_string(lpn)),
                                   now, 0.9);
    now = op.value().complete;
  }
  std::printf("8 LSB pages written and ACKed; parity page flushed to the\n");
  std::printf("backup block (%llu backup pages so far); block is now slow.\n\n",
              static_cast<unsigned long long>(ftl.stats().backup_pages));

  std::printf("=== 2. Power loss during an MSB program ===\n");
  const auto msb = ftl.write_data(20, payload("in-flight write"), now, 0.01);
  const Microseconds mid = msb.value().complete - 500;
  const auto victims = ftl.device().inject_power_loss(mid);
  std::printf("power cut at t=%lld us: %zu program(s) interrupted\n",
              static_cast<long long>(mid), victims.size());
  for (const auto& v : victims) {
    std::printf("  chip %u block %u %s was in flight\n", v.chip, v.block,
                v.pos.to_string().c_str());
  }
  const auto broken = ftl.read_data(0, ftl.device().all_idle_at());
  std::printf("reading lpn 0 (acknowledged data!): %s\n\n",
              broken.is_ok() ? "OK?!" : std::string(to_string(broken.code())).c_str());

  std::printf("=== 3. Reboot: parity-based recovery (Fig. 7b) ===\n");
  const core::RecoveryReport report =
      ftl.recover_from_power_loss(victims, ftl.device().all_idle_at());
  std::printf("slow blocks checked:   %llu\n",
              static_cast<unsigned long long>(report.slow_blocks_checked));
  std::printf("LSB pages re-read:     %llu\n",
              static_cast<unsigned long long>(report.lsb_pages_read));
  std::printf("parity pages read:     %llu\n",
              static_cast<unsigned long long>(report.parity_pages_read));
  std::printf("pages recovered:       %llu\n",
              static_cast<unsigned long long>(report.pages_recovered));
  std::printf("pages lost:            %llu\n",
              static_cast<unsigned long long>(report.pages_lost));
  std::printf("interrupted discarded: %llu (never acknowledged)\n",
              static_cast<unsigned long long>(report.interrupted_writes_discarded));
  std::printf("recovery time:         %lld us\n\n",
              static_cast<long long>(report.recovery_time_us));

  const auto healed = ftl.read_data(0, ftl.device().all_idle_at());
  if (healed.is_ok()) {
    std::printf("reading lpn 0 after recovery -> \"%s\"\n", text_of(healed.value()).c_str());
    std::printf("\nOne parity page protected the whole block — an FPS FTL would\n");
    std::printf("have needed a backup write for every other LSB page instead.\n");
    return 0;
  }
  std::printf("recovery failed: %s\n", std::string(to_string(healed.code())).c_str());
  return 1;
}
