// Run all four FTLs of the paper's evaluation on one workload and compare
// them — a miniature of the Fig. 8 experiments that finishes in a couple
// of seconds.
//
//   $ ./workload_comparison            # Varmail (default)
//   $ ./workload_comparison oltp       # or: ntrx, webserver, varmail, fileserver
#include <cstdio>
#include <cstring>

#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

using namespace rps;

int main(int argc, char** argv) {
  workload::Preset preset = workload::Preset::kVarmail;
  if (argc > 1) {
    for (const workload::Preset p : workload::kAllPresets) {
      if (strcasecmp(argv[1], workload::to_string(p)) == 0) preset = p;
    }
  }

  sim::ExperimentSpec spec = sim::ExperimentSpec::bench_default();
  spec.ftl_config.geometry.blocks_per_chip = 64;  // quicker than the benches
  spec.requests = 60'000;

  std::printf("Workload: %s (%llu requests, %u chips, %u blocks/chip)\n\n",
              workload::to_string(preset),
              static_cast<unsigned long long>(spec.requests),
              spec.ftl_config.geometry.num_chips(),
              spec.ftl_config.geometry.blocks_per_chip);

  TablePrinter table({"FTL", "IOPS", "p50 lat (us)", "p99 lat (us)", "WAF",
                      "erases", "LSB share", "backup pages"});
  for (const sim::FtlKind kind : sim::kAllFtls) {
    const sim::SimResult r = run_experiment(kind, preset, spec);
    const double lsb_share =
        static_cast<double>(r.ftl_stats.host_lsb_writes) /
        static_cast<double>(r.ftl_stats.host_lsb_writes + r.ftl_stats.host_msb_writes);
    table.add_row({r.ftl_name, TablePrinter::fmt(r.iops_makespan(), 0),
                   TablePrinter::fmt(r.latency_us.percentile(50), 0),
                   TablePrinter::fmt(r.latency_us.percentile(99), 0),
                   TablePrinter::fmt(r.waf(), 2),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.erases)),
                   TablePrinter::fmt(lsb_share, 2),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(r.ftl_stats.backup_pages))});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("LSB share: fraction of host writes served by fast (500 us) pages.\n");
  std::printf("flexFTL leans on LSB pages under bursts and repays MSB pages in idle.\n");
  return 0;
}
